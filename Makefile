GO ?= go
FUZZTIME ?= 10s

.PHONY: ci build vet test race chaos-smoke fuzz-smoke portfolio-smoke matrix-smoke obs-smoke crash-smoke bench-gen bench-campaign bench-telemetry bench-portfolio bench-matrix bench-obs bench-resume bench

ci: build vet race portfolio-smoke matrix-smoke obs-smoke crash-smoke bench-gen

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Resilience smoke: the resilience packages under the race detector, plus
# the root chaos campaigns (deterministic fault injection under FailPolicy
# Degrade: golden equality across engines, goroutine-leak check on cancel,
# dead-backend pool rotation).
chaos-smoke:
	$(GO) test -race -count=1 ./internal/resilient ./internal/faultinject ./internal/stage
	$(GO) test -race -count=1 -run 'Chaos|DegradeHealthy|MultiPlatform|CancelDuring' .

# Short coverage-guided fuzzing pass over the four differential oracles
# (CDCL vs brute force, SMT model soundness, bitblast vs evaluator,
# lifter+symexec vs simulator). Each target gets FUZZTIME of wall clock on
# top of replaying the checked-in corpus under internal/oracle/testdata.
fuzz-smoke:
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzSATOracle$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzSMTModelSoundness$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzBitblastVsEval$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle -run '^$$' -fuzz '^FuzzLifterVsMicro$$' -fuzztime $(FUZZTIME)

# Portfolio smoke: a one-program MLine campaign with racing CDCL workers,
# the shared shape cache and staged parallelism all on, under the race
# detector — the solving stack's full concurrency mix in miniature.
portfolio-smoke:
	$(GO) test -race -count=1 -run TestPortfolioSmokeRace .

# Matrix smoke: the platform-zoo battery under the race detector — a tiny
# 3-platform (a53/a72/m0) campaign checked for golden byte identity,
# staged-vs-monolithic row equality, per-platform log/telemetry records, and
# the cross-platform differential oracle with its injected-bug teeth test.
matrix-smoke:
	$(GO) test -race -count=1 -run 'TestMatrix|TestFormatTableRendersMatrix' .
	$(GO) test -race -count=1 -run 'TestDiffProgramMatrix' ./internal/oracle

# Observatory smoke: the telemetry and analysis packages under the race
# detector (Prometheus renderer, SSE stream, flight recorder, trace diff),
# plus the root end-to-end smoke — a tiny campaign on -debug-addr=:0 whose
# /metrics is scraped and format-checked, one SSE tick read, and one forced
# anomaly capture's bundle verified on disk.
obs-smoke:
	$(GO) test -race -count=1 ./internal/telemetry ./internal/analysis
	$(GO) test -race -count=1 -run 'TestObservatory' .

# Crash-safety smoke: the journal package under the race detector, plus the
# root crash suite — resumed-vs-uninterrupted golden equality on both
# engines (including the Degrade fault-injection profile), fingerprint
# mismatch rejection, graceful drain, and the subprocess SIGKILL/SIGINT
# chaos loop that kills a real journaled campaign at escalating offsets and
# resumes it to byte-identical results.
crash-smoke:
	$(GO) test -race -count=1 ./internal/journal
	$(GO) test -count=1 -run 'TestResume|TestDrain|TestCrash|TestGraceful|TestSecondSignal' .

# Matrix-campaign benchmark: runs the K=3 platform matrix against three
# sequential single-platform campaigns and writes BENCH_matrix.json (wall
# clocks, ratio, per-platform verdict rows). Fails if any per-platform count
# diverges or the batched matrix is not under 0.5x of the sequential wall
# clock (generation runs once instead of K times).
bench-matrix:
	BENCH_MATRIX=1 $(GO) test -run TestWriteBenchMatrix -count=1 -v .

# Portfolio/shape-cache benchmark: runs the MLine campaign in the plain
# incremental, cache-only, portfolio-1/4 and portfolio-4+cache modes and
# writes BENCH_portfolio.json (gen time, per-mode speedups, cache traffic).
# Counts must agree across modes; the wall-clock speedup target applies on
# multi-core runners only (racing needs cores to win).
bench-portfolio:
	BENCH_PORTFOLIO=1 $(GO) test -run TestWriteBenchPortfolio -count=1 -v .

# Generation-throughput benchmark: runs the MLine campaign in incremental
# and legacy solver modes and writes BENCH_gen.json (queries/s, GenTime per
# experiment, speedup). Fails if the incremental solver drops below 2x.
bench-gen:
	BENCH_GEN=1 $(GO) test -run TestWriteBenchGen -count=1 -v .

# Campaign-engine benchmark: runs the MLine campaign (8 programs, parallel 4)
# on the staged and monolithic engines and writes BENCH_campaign.json (wall
# clock, per-stage busy/wait/stall). Fails if counts diverge or GenTime
# regresses; the wall-clock speedup is asserted only on multi-core runners.
bench-campaign:
	BENCH_CAMPAIGN=1 $(GO) test -run TestWriteBenchCampaign -count=1 -v .

# Telemetry-overhead benchmark: runs the MLine campaign with a full JSONL
# tracer attached vs a nil tracer and writes BENCH_telemetry.json (wall
# clock, overhead ratio, trace size). Target is ≤1.05x; fails past the
# 1.25x flake ceiling or if tracing changes any campaign count.
bench-telemetry:
	BENCH_TELEMETRY=1 $(GO) test -run TestWriteBenchTelemetry -count=1 -v .

# Observatory-overhead benchmark: runs the traced MLine campaign with and
# without the full observability plane (debug server, 50ms /metrics scraper,
# 50ms SSE dashboard client, armed flight recorder) and writes
# BENCH_obs.json. Target is ≤1.05x over trace-only; fails past the 1.25x
# flake ceiling or if observation changes any campaign count.
bench-obs:
	BENCH_OBS=1 $(GO) test -run TestWriteBenchObs -count=1 -v .

# Journal-overhead benchmark: runs the MLine campaign with and without the
# write-ahead journal (fsync per program completion, periodic atomic
# checkpoints) and writes BENCH_resume.json. Target is ≤1.05x over plain;
# fails past the 1.25x flake ceiling or if journaling changes any campaign
# count.
bench-resume:
	BENCH_RESUME=1 $(GO) test -run TestWriteBenchResume -count=1 -v .

# Full paper-table benchmark suite (one iteration each).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
