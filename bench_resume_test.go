package scamv

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"scamv/internal/journal"
)

// benchResumeRow is one configuration's entry in BENCH_resume.json.
type benchResumeRow struct {
	Mode            string  `json:"mode"` // "plain" or "journaled"
	Programs        int     `json:"programs"`
	Experiments     int     `json:"experiments"`
	Counterexamples int     `json:"counterexamples"`
	Queries         int     `json:"queries"`
	Checkpoints     int     `json:"checkpoints,omitempty"`
	WallMS          float64 `json:"wall_ms"`
}

// benchResumeRun runs the MLine campaign either plain or with a write-ahead
// journal armed at the default checkpoint cadence — the configuration a
// long-lived `scamv -checkpoint` campaign would pay for, fsync per program
// completion included.
func benchResumeRun(t *testing.T, journaled bool, parallel int) benchResumeRow {
	t.Helper()
	e := benchGenCampaign(false)
	e.Name = "bench-resume-mline"
	e.Programs = 8
	e.Parallel = parallel

	row := benchResumeRow{Mode: "plain"}
	if journaled {
		row.Mode = "journaled"
		j, err := journal.Open(t.TempDir(), e.Name, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		e.Journal = j
	}

	w0 := time.Now()
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	row.WallMS = float64(time.Since(w0).Microseconds()) / 1e3
	row.Programs = res.Programs
	row.Experiments = res.Experiments
	row.Counterexamples = res.Counterexamples
	row.Queries = res.Queries
	row.Checkpoints = res.Checkpoints
	return row
}

// TestWriteBenchResume measures the durability tax: the same campaign with
// and without the write-ahead journal (fsync per program, periodic atomic
// checkpoints). Gated behind BENCH_RESUME=1:
//
//	BENCH_RESUME=1 go test -run TestWriteBenchResume -count=1 .
//
// (or `make bench-resume`). Interleaved fastest-of-two like the other
// benches; target ≤1.05x, hard flake ceiling 1.25x.
func TestWriteBenchResume(t *testing.T) {
	if os.Getenv("BENCH_RESUME") == "" {
		t.Skip("set BENCH_RESUME=1 to run the journal-overhead benchmark")
	}
	const parallel = 4
	var plain, journaled benchResumeRow
	for i := 0; i < 2; i++ {
		p := benchResumeRun(t, false, parallel)
		j := benchResumeRun(t, true, parallel)
		if i == 0 || p.WallMS < plain.WallMS {
			plain = p
		}
		if i == 0 || j.WallMS < journaled.WallMS {
			journaled = j
		}
	}

	// Durability must record the campaign, not change it: identical counts.
	if journaled.Experiments != plain.Experiments ||
		journaled.Counterexamples != plain.Counterexamples ||
		journaled.Queries != plain.Queries {
		t.Errorf("journal changed campaign counts:\nplain     %+v\njournaled %+v", plain, journaled)
	}
	if journaled.Checkpoints == 0 {
		t.Error("journaled run wrote zero checkpoints")
	}

	overhead := 0.0
	if plain.WallMS > 0 {
		overhead = journaled.WallMS / plain.WallMS
	}
	out := struct {
		Date      string         `json:"date"`
		Campaign  string         `json:"campaign"`
		Cores     int            `json:"gomaxprocs"`
		Plain     benchResumeRow `json:"plain"`
		Journaled benchResumeRow `json:"journaled"`
		Overhead  float64        `json:"wall_clock_overhead"`
		Target    float64        `json:"target"`
	}{
		Date:     time.Now().UTC().Format("2006-01-02"),
		Campaign: "MLine-support, TemplateA^3 (8 paths), refined MCt/SpecAll, 8 programs x 40 tests, seed 2021, parallel 4; journaled = fsync-per-program WAL + periodic atomic checkpoints",
		Cores:    runtime.GOMAXPROCS(0),
		Plain:    plain, Journaled: journaled,
		Overhead: overhead,
		Target:   1.05,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_resume.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("journal overhead: %.3fx (plain %.1fms, journaled %.1fms, %d checkpoints) on %d core(s)",
		overhead, plain.WallMS, journaled.WallMS, journaled.Checkpoints, out.Cores)
	if overhead > 1.25 {
		t.Errorf("journal overhead %.2fx exceeds the 1.25x flake ceiling (target 1.05x)", overhead)
	}
}
