package scamv

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§6, Table 1 and the Fig. 7 table), plus ablation benchmarks
// for the design choices called out in DESIGN.md §5.
//
// Campaign benchmarks run a reduced-scale campaign per iteration and report
// the paper's metrics as custom benchmark outputs:
//
//	cex/exp           counterexample fraction (refined campaign)
//	cex-unguided/exp  counterexample fraction (unguided baseline)
//	progs-cex         fraction of programs with ≥ 1 counterexample
//	ttc-ms            wall-clock time to first counterexample
//
// Absolute times are not comparable with the paper (simulator vs. 4
// Raspberry Pi boards over 7 days); the SHAPE — who finds counterexamples
// and by what factor — is the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for every row.

import (
	"math/rand"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/attack"
	"scamv/internal/core"
	"scamv/internal/expr"
	"scamv/internal/gen"
	"scamv/internal/micro"
	"scamv/internal/obs"
	"scamv/internal/sat"
	"scamv/internal/smt"
	"scamv/internal/symexec"
)

func reportCampaign(b *testing.B, unguided, refined *Result) {
	b.Helper()
	if refined != nil && refined.Experiments > 0 {
		b.ReportMetric(float64(refined.Counterexamples)/float64(refined.Experiments), "cex/exp")
		b.ReportMetric(float64(refined.ProgramsWithCounter)/float64(refined.Programs), "progs-cex")
		if refined.Found {
			b.ReportMetric(float64(refined.TTC.Milliseconds()), "ttc-ms")
		}
	}
	if unguided != nil && unguided.Experiments > 0 {
		b.ReportMetric(float64(unguided.Counterexamples)/float64(unguided.Experiments), "cex-unguided/exp")
	}
}

func runPair(b *testing.B, unguided, refined Experiment) {
	b.Helper()
	var ru, rr *Result
	var err error
	for i := 0; i < b.N; i++ {
		ru, err = Run(unguided)
		if err != nil {
			b.Fatal(err)
		}
		rr, err = Run(refined)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, ru, rr)
}

// BenchmarkTable1_MPart reproduces Table 1 columns 1–2: M_part vs the
// M_part' refinement on the Stride template, AR = sets 61..127.
func BenchmarkTable1_MPart(b *testing.B) {
	u, r := MPartExperiments(false, 12, 40, 2021)
	runPair(b, u, r)
}

// BenchmarkTable1_MPartPageAligned reproduces Table 1 columns 3–4: the
// page-aligned partition, where prefetching stops at the page boundary and
// no counterexamples exist.
func BenchmarkTable1_MPartPageAligned(b *testing.B) {
	u, r := MPartExperiments(true, 8, 40, 2021)
	runPair(b, u, r)
}

// BenchmarkTable1_MCtTemplateA reproduces Table 1 columns 5–6: M_ct vs the
// M_spec refinement on Template A (the SiSCloak shape).
func BenchmarkTable1_MCtTemplateA(b *testing.B) {
	u, r := MCtExperiments(gen.TemplateA{}, 10, 30, 2021)
	runPair(b, u, r)
}

// BenchmarkTable1_MCtTemplateB reproduces Table 1 columns 7–8: M_ct vs
// M_spec on the general Template B.
func BenchmarkTable1_MCtTemplateB(b *testing.B) {
	u, r := MCtExperiments(gen.TemplateB{}, 12, 30, 2021)
	runPair(b, u, r)
}

// BenchmarkFig7_MCtTemplateC reproduces Fig. 7 columns 1–2: M_ct on
// Template C (causally dependent double loads).
func BenchmarkFig7_MCtTemplateC(b *testing.B) {
	u, r := MCtExperiments(gen.TemplateC{}, 4, 100, 2021)
	runPair(b, u, r)
}

// BenchmarkFig7_MSpec1TemplateC reproduces Fig. 7 column 3: M_spec1 on
// Template C is consistent with the hardware (no Spectre-PHT on the A53).
func BenchmarkFig7_MSpec1TemplateC(b *testing.B) {
	e := MSpec1Experiment(gen.TemplateC{}, 4, 100, 2021)
	var r *Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = Run(e); err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, nil, r)
	if r.Counterexamples != 0 {
		b.Fatalf("Mspec1/Template C should hold, found %d counterexamples", r.Counterexamples)
	}
}

// BenchmarkFig7_MSpec1TemplateB reproduces Fig. 7 column 4: M_spec1 on
// Template B is invalidated by causally independent double transient loads.
func BenchmarkFig7_MSpec1TemplateB(b *testing.B) {
	e := MSpec1Experiment(gen.TemplateB{}, 12, 30, 2021)
	var r *Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = Run(e); err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, nil, r)
}

// BenchmarkFig7_MCtTemplateD reproduces Fig. 7 column 5: straight-line
// speculation after direct unconditional branches does not occur (M_spec'
// finds no counterexamples).
func BenchmarkFig7_MCtTemplateD(b *testing.B) {
	e := StraightLineExperiment(10, 40, 2021)
	var r *Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = Run(e); err != nil {
			b.Fatal(err)
		}
	}
	reportCampaign(b, nil, r)
	if r.Counterexamples != 0 {
		b.Fatalf("straight-line speculation observed: %d", r.Counterexamples)
	}
}

// BenchmarkFig6_SiSCloak reproduces the §6.4 end-to-end attack: Flush+Reload
// recovery of the secret through the single speculative load of Fig. 6.
func BenchmarkFig6_SiSCloak(b *testing.B) {
	const (
		arrayA = 0x10000
		arrayB = 0x20000
	)
	secretLine := 37
	mem := expr.NewMemModel(0)
	mem.Set(arrayA+16, uint64(secretLine)*64)
	train := map[string]uint64{"x0": 0, "x1": 8, "x5": arrayA, "x7": arrayB}
	attackRegs := map[string]uint64{"x0": 16, "x1": 8, "x5": arrayA, "x7": arrayB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := attack.NewRunner(gen.SiSCloak1(), mem, attack.DefaultConfig())
		line, err := r.RecoverLine(train, attackRegs, arrayB, 4)
		if err != nil {
			b.Fatal(err)
		}
		if line != secretLine {
			b.Fatalf("recovered %d, want %d", line, secretLine)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblation_SolverPhase compares model diversification settings:
// the zero default phase (Z3-like minimal models) against heavy random
// phases. Random phases make even the unguided baseline stumble on
// counterexamples — which is exactly the behaviour the refinement technique
// replaces with guidance.
func BenchmarkAblation_SolverPhase(b *testing.B) {
	for _, cfg := range []struct {
		name string
		prob float64
	}{{"zero-phase", 0}, {"random-phase", 0.5}} {
		b.Run(cfg.name, func(b *testing.B) {
			u, _ := MCtExperiments(gen.TemplateA{}, 8, 25, 2021)
			u.RandomPhaseProb = cfg.prob
			var r *Result
			var err error
			for i := 0; i < b.N; i++ {
				if r, err = Run(u); err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, r, nil)
		})
	}
}

// BenchmarkAblation_PathPairSplit compares the per-path-pair relation
// splitting of §5.4 against solving the monolithic Eq. 1 relation.
func BenchmarkAblation_PathPairSplit(b *testing.B) {
	prog := gen.SiSCloak1()
	pl, err := NewPipeline(prog, &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pair-split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := core.NewGenerator(pl.Paths, core.Config{
				Seed: int64(i), Refined: true, Registers: pl.Registers,
			})
			for t := 0; t < 10; t++ {
				if _, ok := g.Next(); !ok {
					break
				}
			}
		}
	})
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := smt.New(smt.Options{Seed: int64(i)})
			s.Assert(core.MonolithicRelation(pl.Paths, true))
			for t := 0; t < 10; t++ {
				if s.Check() != sat.Sat {
					break
				}
				if !s.BlockVars(s.VarNames()) {
					break
				}
			}
		}
	})
}

// BenchmarkAblation_IncrementalSolver compares the shared-prefix incremental
// generator (one solver per path pair + slot, activation-literal class
// scopes) against the legacy fresh-solver-per-stream mode on an
// MLine-support program — the configuration BENCH_gen.json tracks at
// campaign scale (`make bench-gen`).
func BenchmarkAblation_IncrementalSolver(b *testing.B) {
	r := rand.New(rand.NewSource(2021))
	tpl := gen.Sequence{Parts: []gen.Template{gen.TemplateA{}, gen.TemplateA{}, gen.TemplateA{}}}
	prog := tpl.Generate(r, 0)
	pl, err := NewPipeline(prog, &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"incremental", false}, {"legacy", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := core.NewGenerator(pl.Paths, core.Config{
					Seed: int64(i), Refined: true, Registers: pl.Registers,
					Support: obs.MLine{Geom: obs.DefaultGeometry},
					Legacy:  mode.legacy,
				})
				for t := 0; t < 20; t++ {
					if _, ok := g.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkAblation_Projection compares the single tagged instrumentation
// pass of §5.1 (symbolic execution runs once) against the naive approach of
// instrumenting and symbolically executing twice, once per model.
func BenchmarkAblation_Projection(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	progs := make([]*arm.Program, 20)
	for i := range progs {
		progs[i] = gen.TemplateA{}.Generate(r, i)
	}
	b.Run("single-pass-tagged", func(b *testing.B) {
		m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
		for i := 0; i < b.N; i++ {
			p := progs[i%len(progs)]
			if _, err := NewPipeline(p, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-passes", func(b *testing.B) {
		m1 := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecNone}
		m2 := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
		for i := 0; i < b.N; i++ {
			p := progs[i%len(progs)]
			if _, err := NewPipeline(p, m1); err != nil {
				b.Fatal(err)
			}
			if _, err := NewPipeline(p, m2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SpecWindow varies the core's speculation window: with
// window 0 (no speculation) the M_ct refinement finds nothing; the leak
// appears as soon as one transient load fits.
func BenchmarkAblation_SpecWindow(b *testing.B) {
	for _, w := range []int{0, 4, 16} {
		b.Run(windowName(w), func(b *testing.B) {
			_, r := MCtExperiments(gen.TemplateA{}, 6, 20, 2021)
			r.Micro.SpecWindow = w
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = Run(r); err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, nil, res)
			if w == 0 && res.Counterexamples != 0 {
				b.Fatal("no-speculation core cannot leak transiently")
			}
		})
	}
}

// BenchmarkAblation_Prefetcher disables the stride prefetcher: the M_part
// counterexamples must vanish, isolating the prefetcher as the leak's cause.
func BenchmarkAblation_Prefetcher(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "prefetch-on"
		if disabled {
			name = "prefetch-off"
		}
		b.Run(name, func(b *testing.B) {
			_, r := MPartExperiments(false, 10, 40, 2021)
			r.Micro.PrefetchDisabled = disabled
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = Run(r); err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, nil, res)
			if disabled && res.Counterexamples != 0 {
				b.Fatal("counterexamples without a prefetcher")
			}
		})
	}
}

// BenchmarkAblation_TransientForwarding turns on transient load forwarding
// (an out-of-order-like core): the dependent second load of Template C then
// issues, so M_spec1 — sound for the A53 — becomes unsound.
func BenchmarkAblation_TransientForwarding(b *testing.B) {
	for _, fwd := range []bool{false, true} {
		name := "a53-no-forwarding"
		if fwd {
			name = "forwarding-core"
		}
		b.Run(name, func(b *testing.B) {
			e := MSpec1Experiment(gen.TemplateC{}, 3, 60, 2021)
			e.Micro.ForwardTransientLoads = fwd
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = Run(e); err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, nil, res)
			if !fwd && res.Counterexamples != 0 {
				b.Fatal("Mspec1 must hold on the non-forwarding core")
			}
			if fwd && res.Counterexamples == 0 {
				b.Fatal("Mspec1 must break on a forwarding core")
			}
		})
	}
}

func windowName(w int) string {
	switch w {
	case 0:
		return "window-0"
	case 4:
		return "window-4"
	default:
		return "window-16"
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------------

// BenchmarkSolverRelation measures one solver query over a Template A
// refinement relation (the pipeline's dominant cost).
func BenchmarkSolverRelation(b *testing.B) {
	pl, err := NewPipeline(gen.SiSCloak1(), &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll})
	if err != nil {
		b.Fatal(err)
	}
	var pa *symexec.Path
	for _, p := range pl.Paths {
		if len(p.RefinedObs()) > 0 {
			pa = p
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := smt.New(smt.Options{Seed: int64(i)})
		s.Assert(core.PairRelation(pa, pa, true))
		if s.Check() != sat.Sat {
			b.Fatal("relation must be satisfiable")
		}
	}
}

// BenchmarkSymexec measures symbolic execution of an instrumented program.
func BenchmarkSymexec(b *testing.B) {
	m := &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll}
	r := rand.New(rand.NewSource(1))
	prog := gen.TemplateB{}.Generate(r, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPipeline(prog, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroRun measures one simulated victim execution including
// predictor training.
func BenchmarkMicroRun(b *testing.B) {
	prog := gen.SiSCloak1()
	mem := expr.NewMemModel(0)
	regs := map[string]uint64{"x0": 16, "x1": 8, "x5": 0x10000, "x7": 0x20000}
	m := micro.New(micro.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.LoadState(regs, mem); err != nil {
			b.Fatal(err)
		}
		m.ResetMicro()
		if err := m.Run(prog, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_VarTimeMul runs the extension experiment for the
// variable-time arithmetic channel of the paper's §3 illustration: M_ct vs
// the M_time refinement on a core with an early-terminating multiplier and
// a timing attacker.
func BenchmarkExt_VarTimeMul(b *testing.B) {
	u, r := MTimeExperiments(8, 15, 2021)
	runPair(b, u, r)
}

// BenchmarkAblation_Replacement swaps the cache replacement policy: the
// campaign outcomes are insensitive to it (the leaks live in prefetcher and
// speculation behaviour, not in eviction order), which justifies using the
// deterministic LRU instead of the A53's pseudo-random policy.
func BenchmarkAblation_Replacement(b *testing.B) {
	for _, pol := range []micro.Replacement{micro.LRU, micro.RoundRobin, micro.PseudoRandom} {
		b.Run(pol.String(), func(b *testing.B) {
			_, r := MCtExperiments(gen.TemplateA{}, 6, 20, 2021)
			r.Micro.Replacement = pol
			r.Micro.ReplacementSeed = 99
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = Run(r); err != nil {
					b.Fatal(err)
				}
			}
			reportCampaign(b, nil, res)
			if res.Counterexamples == 0 {
				b.Fatal("the speculative leak must survive any replacement policy")
			}
		})
	}
}

// BenchmarkExt_PCModel validates the program-counter security model against
// the data-cache channel: unsound on any machine with a data cache, exposed
// only under refinement.
func BenchmarkExt_PCModel(b *testing.B) {
	u, r := MPCModelExperiments(8, 15, 2021)
	runPair(b, u, r)
}
