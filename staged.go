package scamv

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"scamv/internal/arm"
	"scamv/internal/stage"
	"scamv/internal/telemetry"
)

// This file wires the campaign as an explicit staged pipeline over
// internal/stage, mirroring the paper's Fig. 1 flow:
//
//	proggen → encode → prepare (lift+symexec) → testgen → execute → collect
//
// Every arrow is a bounded channel (backpressure), every box has its own
// worker pool, and every item is tagged with its program index so Collect
// merges results in program order — the determinism-by-ordering contract
// that keeps staged counts seed-for-seed identical to the monolithic
// engine while test generation for program p+1 overlaps execution of
// program p.

// Payload types flowing between stages. The program index rides inside the
// payload as well as in the item tag, because Stage.Run only sees the
// payload.
type stageProg struct {
	p        int
	prog     *arm.Program
	fallback bool
}

type stagePrepared struct {
	p        int
	pl       *Pipeline
	fallback bool
}

type stageGenned struct {
	p        int
	pl       *Pipeline
	gen      genOut
	fallback bool
}

// stageWorkers derives per-stage worker counts and the channel buffer from
// Experiment.Parallel. Lifting+symexec, test generation, and execution are
// the heavy stages and get the full budget; the encode round trip is cheap
// and gets half.
func stageWorkers(e *Experiment) (heavy, light, buf int) {
	heavy = e.Parallel
	if heavy < 1 {
		heavy = 1
	}
	if heavy > e.Programs && e.Programs > 0 {
		heavy = e.Programs
	}
	light = (heavy + 1) / 2
	return heavy, light, heavy
}

// runStaged executes the campaign on the staged engine.
func runStaged(ctx context.Context, e *Experiment, res *Result, start time.Time) error {
	heavy, light, buf := stageWorkers(e)
	c := stage.NewCoord(ctx)
	defer c.Cancel()

	// ProgramGen: single sequential producer owning the template RNG, so
	// the program sequence is identical to the monolithic engine's. On
	// resume, the journal-restored prefix is fast-forwarded here — the RNG
	// is one sequential stream, so programs [restoredN, Programs) only come
	// out right after the draws for [0, restoredN) — and the Source then
	// emits item indices 0..live-1 carrying true program index restoredN+i
	// in the payload (item indices must stay dense for the reorder buffer).
	progRng := rand.New(rand.NewSource(e.Seed))
	for p := 0; p < e.restoredN; p++ {
		e.Template.Generate(progRng, p)
	}
	live := e.Programs - e.restoredN
	progs := stage.Source(c, "proggen", buf, live,
		func(_ context.Context, i int) (stageProg, error) {
			// Graceful shutdown stops production between programs; ErrStop
			// ends the Source cleanly and in-flight items drain and merge.
			if e.drainRequested() {
				return stageProg{}, stage.ErrStop
			}
			p := e.restoredN + i
			t0 := time.Now()
			prog := e.Template.Generate(progRng, p)
			e.Trace.Span("proggen", p, t0)
			return stageProg{p: p, prog: prog}, nil
		})

	// Encode: A64 machine-code round trip (cheap, light pool).
	encoded := stage.Attach(c, stage.Func[stageProg, stageProg]{
		StageName: "encode",
		F: func(_ context.Context, in stageProg) (stageProg, error) {
			t0 := time.Now()
			in.prog, in.fallback = encodeRoundTrip(in.prog)
			e.Trace.Span("encode", in.p, t0)
			return in, nil
		},
	}, light, buf, progs)

	// Prepare: lift to BIR, instrument, symbolically execute (NewPipeline).
	prepared := stage.Attach(c, stage.Func[stageProg, stagePrepared]{
		StageName: "prepare",
		F: func(_ context.Context, in stageProg) (stagePrepared, error) {
			pl, err := newPipelineTraced(in.prog, e.Model, e.Trace, in.p)
			if err != nil {
				return stagePrepared{}, err
			}
			return stagePrepared{p: in.p, pl: pl, fallback: in.fallback}, nil
		},
	}, heavy, buf, encoded)

	// TestGen: refinement-guided test-case generation (core.Generator). The
	// stage context reaches the SAT search, so cancellation does not block
	// behind a pathological query.
	genned := stage.Attach(c, stage.Func[stagePrepared, stageGenned]{
		StageName: "testgen",
		F: func(sctx context.Context, in stagePrepared) (stageGenned, error) {
			return stageGenned{p: in.p, pl: in.pl, gen: generateTests(sctx, e, in.pl, in.p), fallback: in.fallback}, nil
		},
	}, heavy, buf, prepared)

	// Execute: run every test case on the Platform and classify verdicts.
	executed := stage.Attach(c, stage.Func[stageGenned, *programResult]{
		StageName: "execute",
		F: func(sctx context.Context, in stageGenned) (*programResult, error) {
			out, err := executeProgram(sctx, e, in.pl, in.p, in.gen, start)
			if err != nil {
				return nil, err
			}
			if in.fallback {
				out.encodeFallbacks++
			}
			return out, nil
		},
	}, heavy, buf, genned)

	// Expose the live pipeline to the observatory: the tracer's /metrics
	// and SSE dashboard read busy/wait/stall through this source while the
	// campaign runs, and the flight recorder's stall watchdog samples it.
	// The coordinator's snapshots stay readable after the campaign, so the
	// last campaign remains scrapeable until the next one re-registers.
	e.Trace.SetPipelineSource(func() []telemetry.PipelineStage {
		snaps := c.Snapshots()
		out := make([]telemetry.PipelineStage, len(snaps))
		for i, s := range snaps {
			out[i] = telemetry.PipelineStage{
				Name:    s.Name,
				Workers: s.Workers,
				In:      s.In,
				Out:     s.Out,
				Busy:    s.Busy,
				Wait:    s.Wait,
				Stall:   s.Stall,
			}
		}
		return out
	})

	// Collect: merge per-program results — counts, log records, the
	// first-counterexample index — in strict program order.
	err := stage.Collect(c, "collect", executed, func(it stage.Item[*programResult]) error {
		if it.Err != nil {
			// Failed or skipped item: the coordinator already recorded the
			// lowest-index failure; nothing to merge.
			return nil
		}
		// Item indices are 0-based over the live (non-restored) programs;
		// shift back to campaign program indices for the merge.
		return res.mergeProgram(e, e.restoredN+it.Index, it.Val)
	})
	res.Stages = c.Snapshots()
	if err != nil {
		return err
	}
	if p, ferr := c.FirstErr(); ferr != nil {
		return fmt.Errorf("scamv: program %d: %w", e.restoredN+p, ferr)
	}
	return ctx.Err()
}
