package scamv

import (
	"fmt"
	"strings"
	"time"
)

// FormatTable renders campaign results side by side in the layout of the
// paper's Table 1: one column per campaign, one row per metric.
func FormatTable(results ...*Result) string {
	cols := make([][]string, 0, len(results)+1)
	cols = append(cols, []string{
		"Model",
		"Refinement",
		"Coverage",
		"Programs",
		"Prog. w. Count.",
		"Experiments",
		"- Counterexample",
		"- Inconclusive",
		"- Avg. Gen. time",
		"- Avg. Exe. time",
		"- T.T.C.",
	})
	for _, r := range results {
		ttc := "-"
		if r.Found {
			ttc = fmtDur(r.TTC)
		}
		cols = append(cols, []string{
			r.Model,
			r.Refinement,
			r.Coverage,
			fmt.Sprintf("%d", r.Programs),
			fmt.Sprintf("%d", r.ProgramsWithCounter),
			fmt.Sprintf("%d", r.Experiments),
			fmt.Sprintf("%d", r.Counterexamples),
			fmt.Sprintf("%d", r.Inconclusive),
			fmtDur(r.AvgGen()),
			fmtDur(r.AvgExe()),
			ttc,
		})
	}
	widths := make([]int, len(cols))
	for i, col := range cols {
		for _, cell := range col {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	nrows := len(cols[0])
	for row := 0; row < nrows; row++ {
		for i, col := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], col[row])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtDur renders a duration compactly with a sensible unit.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Summary renders a one-line digest of a campaign.
func (r *Result) Summary() string {
	ttc := "no counterexample"
	if r.Found {
		ttc = fmt.Sprintf("first counterexample after %s", fmtDur(r.TTC))
	}
	return fmt.Sprintf("%s: %d programs (%d w/ counterexamples), %d experiments, %d counterexamples, %d inconclusive, %s",
		r.Name, r.Programs, r.ProgramsWithCounter, r.Experiments,
		r.Counterexamples, r.Inconclusive, ttc)
}
