package scamv

import (
	"fmt"
	"strings"
	"time"
)

// FormatTable renders campaign results side by side in the layout of the
// paper's Table 1: one column per campaign, one row per metric — followed,
// for results produced by the staged engine, by one stage-metrics block per
// campaign (the Result.Stages spine).
func FormatTable(results ...*Result) string {
	// Resilience rows appear only when some result has nonzero counters:
	// a healthy FailFast campaign renders byte-identically to the
	// pre-resilience layout.
	resilienceRows := false
	for _, r := range results {
		if r.SkippedTests > 0 || r.QuarantinedPrograms > 0 || r.Retries > 0 ||
			r.Timeouts > 0 || r.BreakerTrips > 0 {
			resilienceRows = true
		}
	}
	cols := make([][]string, 0, len(results)+1)
	head := []string{
		"Model",
		"Refinement",
		"Coverage",
		"Programs",
		"Prog. w. Count.",
		"Experiments",
		"- Counterexample",
		"- Inconclusive",
		"- Avg. Gen. time",
		"- Avg. Exe. time",
		"- T.T.C.",
		"- First c.e.",
	}
	if resilienceRows {
		head = append(head,
			"- Skipped tests",
			"- Quarantined",
			"- Retries",
			"- Timeouts",
			"- Breaker trips",
		)
	}
	cols = append(cols, head)
	for _, r := range results {
		ttc, first := "-", "-"
		if r.Found {
			ttc = fmtDur(r.TTC)
			first = fmt.Sprintf("p%d/t%d", r.FirstCEProgram, r.FirstCETest)
		}
		col := []string{
			r.Model,
			r.Refinement,
			r.Coverage,
			fmt.Sprintf("%d", r.Programs),
			fmt.Sprintf("%d", r.ProgramsWithCounter),
			fmt.Sprintf("%d", r.Experiments),
			fmt.Sprintf("%d", r.Counterexamples),
			fmt.Sprintf("%d", r.Inconclusive),
			fmtDur(r.AvgGen()),
			fmtDur(r.AvgExe()),
			ttc,
			first,
		}
		if resilienceRows {
			col = append(col,
				fmt.Sprintf("%d", r.SkippedTests),
				fmt.Sprintf("%d", r.QuarantinedPrograms),
				fmt.Sprintf("%d", r.Retries),
				fmt.Sprintf("%d", r.Timeouts),
				fmt.Sprintf("%d", r.BreakerTrips),
			)
		}
		cols = append(cols, col)
	}
	widths := make([]int, len(cols))
	for i, col := range cols {
		for _, cell := range col {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	nrows := len(cols[0])
	for row := 0; row < nrows; row++ {
		for i, col := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], col[row])
		}
		sb.WriteString("\n")
	}
	for _, r := range results {
		if len(r.Matrix) > 0 {
			sb.WriteString("\n")
			sb.WriteString(FormatMatrix(r))
		}
	}
	for _, r := range results {
		if len(r.Stages) > 0 {
			sb.WriteString("\n")
			sb.WriteString(FormatStages(r))
		}
	}
	return sb.String()
}

// FormatStages renders one campaign's per-stage metrics: items in/out,
// worker counts, busy time (and its share of the campaign's total busy
// time), input-starvation wait, and output backpressure stall. The hot
// stage — the one to shard or cache next — is the one with high busy share
// whose downstream neighbors show high wait.
func FormatStages(r *Result) string {
	if len(r.Stages) == 0 {
		return ""
	}
	var totalBusy time.Duration
	for _, s := range r.Stages {
		totalBusy += s.Busy
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "stages[%s]:\n", r.Name)
	rows := [][]string{{"stage", "workers", "in", "out", "skip", "busy", "busy%", "wait", "stall"}}
	for _, s := range r.Stages {
		// A zero-duration campaign (all stages instantaneous, or metrics
		// disabled) has no meaningful shares; render "-" instead of
		// dividing by zero.
		share := "-"
		if totalBusy > 0 {
			share = fmt.Sprintf("%.0f%%", float64(s.Busy)*100/float64(totalBusy))
		}
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Workers),
			fmt.Sprintf("%d", s.In),
			fmt.Sprintf("%d", s.Out),
			fmt.Sprintf("%d", s.Skipped),
			fmtDur(s.Busy),
			share,
			fmtDur(s.Wait),
			fmtDur(s.Stall),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		sb.WriteString(" ")
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtDur renders a duration compactly with a sensible unit.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Summary renders a one-line digest of a campaign.
func (r *Result) Summary() string {
	ttc := "no counterexample"
	if r.Found {
		ttc = fmt.Sprintf("first counterexample at p%d/t%d after %s",
			r.FirstCEProgram, r.FirstCETest, fmtDur(r.TTC))
	}
	return fmt.Sprintf("%s: %d programs (%d w/ counterexamples), %d experiments, %d counterexamples, %d inconclusive, %s",
		r.Name, r.Programs, r.ProgramsWithCounter, r.Experiments,
		r.Counterexamples, r.Inconclusive, ttc)
}
