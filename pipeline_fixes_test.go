package scamv

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/core"
	"scamv/internal/gen"
	"scamv/internal/micro"
	"scamv/internal/obs"
)

// TestWithDefaultsMergesMicro guards the field-wise merge: a partially-set
// Micro config must keep its explicit fields instead of being replaced
// wholesale by micro.DefaultConfig.
func TestWithDefaultsMergesMicro(t *testing.T) {
	cases := []struct {
		name string
		in   micro.Config
		want func(micro.Config) bool
	}{
		{"vartime survives", micro.Config{VarTimeMul: true},
			func(c micro.Config) bool { return c.VarTimeMul && c.Sets == 128 }},
		{"spec window survives", micro.Config{SpecWindow: 3},
			func(c micro.Config) bool { return c.SpecWindow == 3 && c.Ways == 4 }},
		{"no-speculation sentinel survives", micro.Config{SpecWindow: micro.NoSpeculation},
			func(c micro.Config) bool { return c.SpecWindow < 0 }},
		{"prefetch disabled survives", micro.Config{PrefetchDisabled: true},
			func(c micro.Config) bool { return c.PrefetchDisabled && c.PrefetchRun == 3 }},
		{"cycle costs survive", micro.Config{HitCycles: 2, MissCycles: 11, MispredictCycles: 5},
			func(c micro.Config) bool {
				return c.HitCycles == 2 && c.MissCycles == 11 && c.MispredictCycles == 5
			}},
		{"noise survives alongside other fields", micro.Config{NoiseProb: 0.125, VarTimeMul: true},
			func(c micro.Config) bool { return c.NoiseProb == 0.125 && c.VarTimeMul }},
	}
	for _, tc := range cases {
		e := Experiment{Micro: tc.in}
		if got := e.WithDefaults(); !tc.want(got.Micro) {
			t.Errorf("%s: got %+v", tc.name, got.Micro)
		}
	}
}

// failingPlatform errors on the programs whose generated index appears in
// fail, and otherwise delegates to the simulator. It records which program
// indexes actually started executing.
type failingPlatform struct {
	fail map[int]bool

	mu      sync.Mutex
	started map[int]bool
}

func progIndex(name string) int {
	i := strings.LastIndex(name, "-")
	var idx int
	fmt.Sscanf(name[i+1:], "%d", &idx)
	return idx
}

func (f *failingPlatform) Execute(ctx context.Context, e *Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (Measurement, error) {
	idx := progIndex(prog.Name)
	f.mu.Lock()
	if f.started == nil {
		f.started = map[int]bool{}
	}
	f.started[idx] = true
	f.mu.Unlock()
	if f.fail[idx] {
		return Measurement{}, fmt.Errorf("injected failure for program %d", idx)
	}
	return SimPlatform{}.Execute(ctx, e, prog, st, train, noise)
}

// TestRunParallelErrorDeterministicAndPrompt: with several workers and two
// erroring programs racing, Run must always report the lowest erroring
// program index and must not run the remaining programs to completion after
// the failure.
func TestRunParallelErrorDeterministicAndPrompt(t *testing.T) {
	const programs = 24
	for attempt := 0; attempt < 3; attempt++ {
		fp := &failingPlatform{fail: map[int]bool{2: true, 3: true, 20: true}}
		e := Experiment{
			Name:            "err-campaign",
			Template:        gen.Stride{},
			Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecNone},
			Programs:        programs,
			TestsPerProgram: 2,
			Repeats:         1,
			Seed:            5,
			Platform:        fp,
			Parallel:        4,
		}
		res, err := Run(e)
		if err == nil {
			t.Fatalf("attempt %d: expected error, got result %+v", attempt, res)
		}
		if !strings.Contains(err.Error(), "program 2") {
			t.Fatalf("attempt %d: error %q does not name the lowest erroring program", attempt, err)
		}
		// Prompt termination: the campaign must not have run every program.
		// Programs 0..3 start before the failure; draining may let a few
		// more through, but the tail (e.g. program 20+) must never start.
		fp.mu.Lock()
		ran := len(fp.started)
		late := fp.started[programs-1] && fp.started[20] && fp.started[15]
		fp.mu.Unlock()
		if ran == programs || late {
			t.Fatalf("attempt %d: %d/%d programs started after error", attempt, ran, programs)
		}
	}
}

// TestRunSequentialErrorStopsImmediately: with Parallel <= 1 the first
// erroring program aborts the campaign before any later program starts.
func TestRunSequentialErrorStopsImmediately(t *testing.T) {
	fp := &failingPlatform{fail: map[int]bool{1: true}}
	e := Experiment{
		Name:            "err-seq",
		Template:        gen.Stride{},
		Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecNone},
		Programs:        6,
		TestsPerProgram: 1,
		Repeats:         1,
		Seed:            5,
		Platform:        fp,
	}
	if _, err := Run(e); err == nil {
		t.Fatal("expected error")
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	for idx := range fp.started {
		if idx > 1 {
			t.Fatalf("program %d started after the sequential failure", idx)
		}
	}
}

// TestEncodeRoundTripConsistency: a consistent round trip substitutes the
// decoded program and counts no fallback.
func TestEncodeRoundTripConsistency(t *testing.T) {
	e := Experiment{
		Name:            "roundtrip",
		Template:        gen.Stride{},
		Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecNone},
		Programs:        3,
		TestsPerProgram: 2,
		Repeats:         1,
		Seed:            5,
	}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.EncodeFallbacks != 0 {
		t.Fatalf("stride programs round-trip cleanly, got %d fallbacks", res.EncodeFallbacks)
	}
}
