package scamv

import (
	"context"
	"fmt"

	"scamv/internal/obs"
)

// This file implements the automatic model repair the paper proposes as
// future work (§8): "refine unsound observation models to automatically
// restore their soundness, e.g., by adding state observations".
//
// The repair searches the M_specK family (obs.MCt with BaseSpecLoads = K):
// K = 0 is plain M_ct, K = 1 is M_spec1, and so on. Starting from the model
// under repair, each round validates M_specK against the refinement M_spec
// on the simulated hardware; when counterexamples surface, the
// distinguishing observations — the transient loads beyond the first K —
// are promoted into the model (K is incremented) and validation repeats.
// The loop stops at the first K with no counterexamples: the coarsest model
// of the family that testing cannot invalidate.

// RepairStep records one round of the repair loop.
type RepairStep struct {
	// K is the number of transient loads the candidate model observes.
	K int
	// Model is the candidate's name.
	Model string
	// Result is the validation campaign outcome for this candidate.
	Result *Result
}

// RepairReport is the outcome of RepairModel.
type RepairReport struct {
	Steps []RepairStep
	// FinalK is the repaired model's K.
	FinalK int
	// Validated is true when the final candidate produced no
	// counterexamples. Because validation is testing, this is evidence of
	// soundness, not proof (§6.2).
	Validated bool
}

// String renders the repair trace.
func (r *RepairReport) String() string {
	out := ""
	for _, s := range r.Steps {
		out += fmt.Sprintf("K=%d (%s): %d experiments, %d counterexamples\n",
			s.K, s.Model, s.Result.Experiments, s.Result.Counterexamples)
	}
	if r.Validated {
		out += fmt.Sprintf("repaired: Mspec%d is consistent with the hardware\n", r.FinalK)
	} else {
		out += "repair failed: counterexamples remain at the speculation-window bound\n"
	}
	return out
}

// RepairModel runs the repair loop over the M_specK family. base supplies
// the campaign parameters (template, program counts, seed, core); its Model
// and Refined fields are overridden per candidate. maxK bounds the search
// (0 means the speculation window's worth of loads, 8).
func RepairModel(base Experiment, maxK int) (*RepairReport, error) {
	return RepairModelContext(context.Background(), base, maxK)
}

// RepairModelContext is RepairModel under a context. Each validation round
// is a full staged-engine campaign (RunContext), so cancellation propagates
// through every pipeline stage of the round in flight.
func RepairModelContext(ctx context.Context, base Experiment, maxK int) (*RepairReport, error) {
	if maxK <= 0 {
		maxK = 8
	}
	report := &RepairReport{}
	for k := 0; k <= maxK; k++ {
		e := base
		e.Model = &obs.MCt{
			Geom:          obs.DefaultGeometry,
			Spec:          obs.SpecAll,
			BaseSpecLoads: k,
		}
		e.Refined = true
		e.Speculative = true
		if e.Name == "" {
			e.Name = "repair"
		}
		e.Name = fmt.Sprintf("%s/K=%d", base.Name, k)
		res, err := RunContext(ctx, e)
		if err != nil {
			return nil, fmt.Errorf("scamv: repair round K=%d: %w", k, err)
		}
		report.Steps = append(report.Steps, RepairStep{K: k, Model: e.Model.Name(), Result: res})
		report.FinalK = k
		if res.Counterexamples == 0 {
			report.Validated = true
			return report, nil
		}
	}
	return report, nil
}
