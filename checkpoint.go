package scamv

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scamv/internal/journal"
	"scamv/internal/obs"
)

// This file is the campaign side of crash safety: the configuration
// fingerprint that guards resume, the converters between the in-memory
// programResult and the durable journal.ProgramRecord, and the signal
// wiring for graceful shutdown. The durability mechanics live in
// internal/journal; the engines hook in at Result.mergeProgram.

// fingerprintConfig is the canonical serialization of every experiment knob
// that influences campaign counts. Resume refuses a journal whose fingerprint
// differs: splicing programs [N, P) generated under one configuration onto a
// prefix generated under another would produce a Result no uninterrupted run
// could — silently.
//
// Deliberately excluded: Parallel, Monolithic, ExecTimeout, and RetryBackoff
// are count-invariant (scheduling and wall-clock only), so a campaign may
// legitimately resume with different values — e.g. fewer workers on a smaller
// machine. Template, Platform, and AttackerView are code, not data, and
// cannot be fingerprinted; swapping them between runs is the caller's
// responsibility to avoid (cmd/scamv derives all three from fingerprinted
// fields, so its campaigns are fully covered).
type fingerprintConfig struct {
	Name            string  `json:"name"`
	Seed            int64   `json:"seed"`
	Programs        int     `json:"programs"`
	TestsPerProgram int     `json:"tests_per_program"`
	Model           string  `json:"model"`
	Refined         bool    `json:"refined"`
	Support         string  `json:"support"`
	Repeats         int     `json:"repeats"`
	TrainRuns       int     `json:"train_runs"`
	Speculative     bool    `json:"speculative"`
	TimingAttacker  bool    `json:"timing_attacker"`
	RandomPhaseProb float64 `json:"random_phase_prob"`
	MaxConflicts    int64   `json:"max_conflicts"`
	LegacySolver    bool    `json:"legacy_solver"`
	Portfolio       int     `json:"portfolio"`
	SharedCache     bool    `json:"shared_cache"`
	FailPolicy      int     `json:"fail_policy"`
	QuarantineAfter int     `json:"quarantine_after"`
	Retries         int     `json:"retries"`
	// Micro configs are flat value structs, so the %+v rendering is a stable
	// identity without hand-maintaining a field list here.
	Micro     string   `json:"micro"`
	Platforms []string `json:"platforms,omitempty"`
}

// journalFingerprint renders the experiment's count-affecting configuration
// for the journal header. Call on a WithDefaults-applied experiment (as
// RunContext does) so defaulted and explicit values fingerprint identically.
func journalFingerprint(e *Experiment) string {
	fc := fingerprintConfig{
		Name:            e.Name,
		Seed:            e.Seed,
		Programs:        e.Programs,
		TestsPerProgram: e.TestsPerProgram,
		Model:           e.Model.Name(),
		Refined:         e.Refined,
		Support:         obs.SupportName(e.Support),
		Repeats:         e.Repeats,
		TrainRuns:       e.TrainRuns,
		Speculative:     e.Speculative,
		TimingAttacker:  e.TimingAttacker,
		RandomPhaseProb: e.RandomPhaseProb,
		MaxConflicts:    e.MaxConflicts,
		LegacySolver:    e.LegacySolver,
		Portfolio:       e.Portfolio,
		SharedCache:     e.SharedCache,
		FailPolicy:      int(e.FailPolicy),
		QuarantineAfter: e.QuarantineAfter,
		Retries:         e.Retries,
		Micro:           fmt.Sprintf("%+v", e.Micro),
	}
	for _, spec := range e.Platforms {
		fc.Platforms = append(fc.Platforms,
			spec.Name+"="+fmt.Sprintf("%+v", spec.Micro))
	}
	b, err := json.Marshal(fc)
	if err != nil {
		// Marshaling a struct of strings, numbers and bools cannot fail.
		panic("scamv: fingerprint marshal: " + err.Error())
	}
	return string(b)
}

// toJournalRecord converts one committed program result into its durable
// form. Durations are journaled at microsecond granularity — they are
// wall-clock fields, outside the resume-equivalence contract.
func toJournalRecord(p int, out *programResult) journal.ProgramRecord {
	rec := journal.ProgramRecord{
		Prog:            p,
		Experiments:     out.experiments,
		Counterexamples: out.counterexamples,
		Inconclusive:    out.inconclusive,
		EncodeFallbacks: out.encodeFallbacks,
		Queries:         out.queries,
		GenUS:           out.genTime.Microseconds(),
		ExeUS:           out.exeTime.Microseconds(),
		Found:           out.found,
		FirstCETest:     out.firstCETest,
		TTCUS:           out.ttcWall.Microseconds(),
		SkippedTests:    out.skippedTests,
		Quarantined:     out.quarantined,
		Retries:         out.retries,
		Timeouts:        out.timeouts,
		ShapeKeys:       out.shapeKeys,
		Logs:            out.records,
	}
	for _, s := range out.skips {
		rec.Skips = append(rec.Skips, journal.Skip(s))
	}
	for i := range out.platforms {
		pt := &out.platforms[i]
		rec.Platforms = append(rec.Platforms, journal.PlatformTally{
			Experiments:     pt.experiments,
			Counterexamples: pt.counterexamples,
			Inconclusive:    pt.inconclusive,
			Skipped:         pt.skipped,
			ExeUS:           pt.exeTime.Microseconds(),
			Found:           pt.found,
			FirstCETest:     pt.firstCETest,
		})
	}
	return rec
}

// fromJournalRecord reconstructs the in-memory result of a restored program
// so the resume path can feed it through the same mergeProgram step the
// engines use — one merge implementation, uninterrupted or resumed.
func fromJournalRecord(jr journal.ProgramRecord) *programResult {
	out := &programResult{
		experiments:     jr.Experiments,
		counterexamples: jr.Counterexamples,
		inconclusive:    jr.Inconclusive,
		encodeFallbacks: jr.EncodeFallbacks,
		queries:         jr.Queries,
		genTime:         time.Duration(jr.GenUS) * time.Microsecond,
		exeTime:         time.Duration(jr.ExeUS) * time.Microsecond,
		found:           jr.Found,
		firstCETest:     jr.FirstCETest,
		ttcWall:         time.Duration(jr.TTCUS) * time.Microsecond,
		skippedTests:    jr.SkippedTests,
		quarantined:     jr.Quarantined,
		retries:         jr.Retries,
		timeouts:        jr.Timeouts,
		shapeKeys:       jr.ShapeKeys,
		records:         jr.Logs,
	}
	for _, s := range jr.Skips {
		out.skips = append(out.skips, Skip(s))
	}
	for i := range jr.Platforms {
		pt := &jr.Platforms[i]
		out.platforms = append(out.platforms, platformTally{
			experiments:     pt.Experiments,
			counterexamples: pt.Counterexamples,
			inconclusive:    pt.Inconclusive,
			skipped:         pt.Skipped,
			exeTime:         time.Duration(pt.ExeUS) * time.Microsecond,
			found:           pt.Found,
			firstCETest:     pt.FirstCETest,
		})
	}
	return out
}

// ArmShutdown wires SIGINT/SIGTERM to the graceful-shutdown protocol and
// returns the drain channel to put in Experiment.Drain. The first signal
// calls onFirst (status reporting) and closes the channel: the engines stop
// starting programs, everything in flight completes and merges, and the
// campaign returns a resumable partial Result with Drained set. A second
// signal calls onSecond — typically an immediate non-zero exit for a wedged
// drain. Both callbacks run on the signal goroutine and may be nil. The
// handler stays installed for the life of the process.
func ArmShutdown(onFirst, onSecond func()) <-chan struct{} {
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		if onFirst != nil {
			onFirst()
		}
		close(drain)
		<-sigCh
		if onSecond != nil {
			onSecond()
		}
	}()
	return drain
}
