package scamv

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scamv/internal/telemetry"
)

// TestObservatory is the end-to-end smoke of the campaign observatory: a
// tiny campaign with the aggregates-only tracer, a debug endpoint on an
// ephemeral port, and an armed flight recorder — then scrape /metrics,
// load the live page, read one SSE tick, and force an anomaly capture.
// This is what `make obs-smoke` runs.
func TestObservatory(t *testing.T) {
	tr := telemetry.New(nil)
	flightDir := filepath.Join(t.TempDir(), "flights")
	fr := tr.StartFlightRecorder(telemetry.FlightConfig{Dir: flightDir})
	defer fr.Stop()

	srv, addr, err := telemetry.ServeDebug("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr.SetDebugAddr(addr.String())
	base := "http://" + addr.String()

	e := benchGenCampaign(false)
	e.Name = "obs-smoke"
	e.Programs = 2
	e.Parallel = 2
	e.Trace = tr
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiments == 0 {
		t.Fatal("smoke campaign ran no experiments")
	}
	// -debug-addr=:0 support: the bound address flows into the result.
	if res.DebugAddr != addr.String() {
		t.Errorf("Result.DebugAddr = %q, want %q", res.DebugAddr, addr.String())
	}

	// /metrics: the families the campaign must have populated.
	body := httpGet(t, base+"/metrics")
	for _, family := range []string{
		"# TYPE scamv_experiments_total counter",
		"# TYPE scamv_solver_queries_total counter",
		"# TYPE scamv_query_duration_seconds histogram",
		"# TYPE scamv_stage_duration_seconds histogram",
		"# TYPE scamv_stage_stall_seconds_total counter",
		"# TYPE scamv_flight_events_total counter",
		"scamv_query_duration_seconds_bucket{le=\"+Inf\"}",
		"scamv_stage_busy_seconds_total{stage=\"testgen\"}",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	if strings.Contains(body, "scamv_experiments_total 0\n") {
		t.Error("/metrics shows zero experiments after the campaign")
	}

	// Live dashboard page.
	page := httpGet(t, base+"/debug/scamv/live")
	if !strings.Contains(page, "scamv campaign observatory") {
		t.Error("live page did not serve")
	}

	// One SSE tick with real campaign aggregates in it.
	resp, err := http.Get(base + "/debug/scamv/events?interval_ms=50")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var tick struct {
		Experiments int64 `json:"experiments"`
		Pipeline    []struct {
			Name string `json:"name"`
		} `json:"pipeline"`
	}
	got := false
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &tick); err != nil {
				t.Fatalf("SSE tick is not JSON: %v", err)
			}
			got = true
			break
		}
	}
	resp.Body.Close()
	if !got {
		t.Fatal("no SSE tick received")
	}
	if tick.Experiments != int64(res.Experiments) {
		t.Errorf("SSE tick experiments = %d, want %d", tick.Experiments, res.Experiments)
	}
	if len(tick.Pipeline) == 0 {
		t.Error("SSE tick has no live pipeline stages (staged engine source not registered?)")
	}

	// Force one anomaly capture through the debug endpoint and check the
	// bundle: ring snapshot in trace format plus a goroutine dump.
	resp, err = http.Post(base+"/debug/scamv/flight?reason=smoke-test", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cap struct {
		Bundle string `json:"bundle"`
		Error  string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cap)
	resp.Body.Close()
	if err != nil || cap.Error != "" || cap.Bundle == "" {
		t.Fatalf("forced capture failed: %+v (err %v)", cap, err)
	}
	recs, err := telemetry.LoadTrace(filepath.Join(cap.Bundle, "ring.jsonl"))
	if err != nil {
		t.Fatalf("bundle ring does not load as a trace: %v", err)
	}
	if len(recs) == 0 {
		t.Error("bundle ring is empty after a campaign")
	}
	dump, err := os.ReadFile(filepath.Join(cap.Bundle, "goroutines.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "goroutine") {
		t.Error("bundle goroutine dump looks wrong")
	}
	if _, err := os.Stat(filepath.Join(cap.Bundle, "counters.json")); err != nil {
		t.Error(err)
	}

	// Flight status reflects the capture.
	var st telemetry.FlightStatus
	if err := json.Unmarshal([]byte(httpGet(t, base+"/debug/scamv/flight")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Captures == 0 || st.Events == 0 {
		t.Errorf("flight status after capture = %+v", st)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(body)
}

// TestObservatoryTornTrace covers the -report satellite at the library
// level: a campaign trace with a torn final line still loads tolerantly
// with the torn line counted.
func TestObservatoryTornTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := telemetry.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	e := benchGenCampaign(false)
	e.Name = "torn-smoke"
	e.Programs = 2
	e.Trace = tr
	if _, err := Run(e); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	full, err := telemetry.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final line mid-record, as a kill -9 during append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.LoadTrace(path); err == nil {
		t.Fatal("strict loader accepted the torn trace")
	}
	recs, torn, err := telemetry.LoadTraceTolerant(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 1 || len(recs) != len(full)-1 {
		t.Errorf("tolerant load: %d records %d torn, want %d records 1 torn",
			len(recs), torn, len(full)-1)
	}
}
