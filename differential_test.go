package scamv

// Differential testing between the two independent semantics of the
// AArch64 subset: the lifter + symbolic executor (used for relation
// synthesis) and the microarchitectural simulator (used for experiment
// execution). Any disagreement between the two would silently corrupt the
// validation verdicts. The generator, the state sampler and the comparison
// (every register plus the full final memory image) live in internal/oracle,
// shared with the native fuzz targets; this sweep pins a deterministic seed
// and additionally asserts the generator actually exercises the whole
// instruction set.
import (
	"math/rand"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/oracle"
)

func TestDifferentialSymexecVsMicro(t *testing.T) {
	rng := rand.New(rand.NewSource(20211018))
	cfg := oracle.DefaultGen()
	seen := make(map[arm.Op]bool)
	for iter := 0; iter < 400; iter++ {
		prog := oracle.RandomProgram(rng, cfg)
		regs, mem := oracle.RandomState(rng, cfg)
		if err := oracle.DiffProgram(prog, regs, mem, nil); err != nil {
			small := oracle.ShrinkProgram(prog, func(q *arm.Program) bool {
				return oracle.DiffProgram(q, regs, mem, nil) != nil
			})
			t.Fatalf("iter %d: %v\nshrunk repro:\n%s", iter, err, small)
		}
		for _, ins := range prog.Instrs {
			seen[ins.Op] = true
		}
	}
	// Coverage: the sweep must exercise the full A64 subset — in particular
	// register-offset loads and stores and both branch forms, which earlier
	// generators silently omitted.
	for _, op := range []arm.Op{
		arm.MOVZ, arm.MOVR, arm.ADDI, arm.ADDR, arm.SUBI, arm.SUBR,
		arm.ANDI, arm.ANDR, arm.ORRR, arm.EORR, arm.LSLI, arm.LSRI,
		arm.MULR, arm.LDRI, arm.LDRR, arm.STRI, arm.STRR,
		arm.CMPR, arm.CMPI, arm.TSTI, arm.B, arm.BCC, arm.NOP, arm.HLT,
	} {
		if !seen[op] {
			t.Errorf("400-program sweep never generated %v", op)
		}
	}
}
