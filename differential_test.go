package scamv

// Differential testing between the two independent semantics of the
// AArch64 subset: the lifter + symbolic executor (used for relation
// synthesis) and the microarchitectural simulator (used for experiment
// execution). Any disagreement between the two would silently corrupt the
// validation verdicts, so we fuzz random programs and random inputs and
// require the final architectural states to match exactly.

import (
	"math/rand"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/bir"
	"scamv/internal/expr"
	"scamv/internal/lifter"
	"scamv/internal/micro"
	"scamv/internal/symexec"
)

// randomInstr generates one random non-branch instruction over x0..x7.
func randomInstr(r *rand.Rand) arm.Instr {
	reg := func() arm.Reg { return arm.X(r.Intn(8)) }
	imm := func() uint64 { return uint64(r.Intn(1 << 12)) }
	switch r.Intn(14) {
	case 0:
		return arm.Instr{Op: arm.MOVZ, Rd: reg(), Imm: imm()}
	case 1:
		return arm.Instr{Op: arm.MOVR, Rd: reg(), Rn: reg()}
	case 2:
		return arm.Instr{Op: arm.ADDI, Rd: reg(), Rn: reg(), Imm: imm()}
	case 3:
		return arm.Instr{Op: arm.ADDR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 4:
		return arm.Instr{Op: arm.SUBI, Rd: reg(), Rn: reg(), Imm: imm()}
	case 5:
		return arm.Instr{Op: arm.SUBR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 6:
		return arm.Instr{Op: arm.ANDI, Rd: reg(), Rn: reg(), Imm: imm()}
	case 7:
		return arm.Instr{Op: arm.ORRR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 8:
		return arm.Instr{Op: arm.EORR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 9:
		return arm.Instr{Op: arm.LSLI, Rd: reg(), Rn: reg(), Imm: uint64(r.Intn(64))}
	case 10:
		return arm.Instr{Op: arm.LSRI, Rd: reg(), Rn: reg(), Imm: uint64(r.Intn(64))}
	case 11:
		return arm.Instr{Op: arm.MULR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 12:
		return arm.Instr{Op: arm.LDRI, Rd: reg(), Rn: reg(), Imm: imm() &^ 7}
	default:
		return arm.Instr{Op: arm.STRI, Rd: reg(), Rn: reg(), Imm: imm() &^ 7}
	}
}

// randomProgram builds a random program: a straight-line prefix, an
// optional conditional branch over a compare, and two random block bodies.
func randomProgram(r *rand.Rand, idx int) *arm.Program {
	p := arm.NewProgram("fuzz")
	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		p.Add(randomInstr(r))
	}
	if r.Intn(2) == 0 {
		conds := []arm.Cond{arm.EQ, arm.NE, arm.HS, arm.LO, arm.HI, arm.LS, arm.GE, arm.LT, arm.GT, arm.LE}
		p.Add(
			arm.Instr{Op: arm.CMPR, Rn: arm.X(r.Intn(8)), Rm: arm.X(r.Intn(8))},
			arm.Instr{Op: arm.BCC, Cond: conds[r.Intn(len(conds))], Label: "else"},
		)
		for i := 0; i < 1+r.Intn(3); i++ {
			p.Add(randomInstr(r))
		}
		p.Add(arm.Instr{Op: arm.B, Label: "end"})
		p.Mark("else")
		for i := 0; i < 1+r.Intn(3); i++ {
			p.Add(randomInstr(r))
		}
		p.Mark("end")
	}
	p.Add(arm.Instr{Op: arm.HLT})
	return p
}

func TestDifferentialSymexecVsMicro(t *testing.T) {
	rng := rand.New(rand.NewSource(20211018))
	for iter := 0; iter < 400; iter++ {
		prog := randomProgram(rng, iter)
		bp, err := lifter.Lift(prog)
		if err != nil {
			t.Fatalf("iter %d: lift: %v\n%s", iter, err, prog)
		}
		paths, err := symexec.Run(bp, 0)
		if err != nil {
			t.Fatalf("iter %d: symexec: %v\n%s", iter, err, prog)
		}

		// Random initial state. Addresses stay in a small window so loads
		// and stores alias interestingly.
		regs := map[string]uint64{}
		for i := 0; i < 8; i++ {
			name := lifter.RegName(arm.X(i))
			switch rng.Intn(3) {
			case 0:
				regs[name] = uint64(rng.Intn(1 << 12))
			case 1:
				regs[name] = rng.Uint64()
			default:
				regs[name] = 0x10000 + uint64(rng.Intn(16))*8
			}
		}
		mem := expr.NewMemModel(0)
		for i := 0; i < 8; i++ {
			mem.Set(0x10000+uint64(i)*8, rng.Uint64())
		}

		// Micro execution (speculation and caches do not affect the
		// architectural result).
		m := micro.New(micro.DefaultConfig())
		if err := m.LoadState(regs, mem); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(prog, 0, nil); err != nil {
			t.Fatalf("iter %d: micro: %v\n%s", iter, err, prog)
		}

		// Symbolic execution evaluated under the same initial state.
		a := expr.NewAssignment()
		for k, v := range regs {
			a.BV[k] = v
		}
		a.Mem[bir.MemName] = mem
		var taken *symexec.Path
		for _, p := range paths {
			if a.EvalBool(p.Cond) {
				if taken != nil {
					t.Fatalf("iter %d: two feasible paths\n%s", iter, prog)
				}
				taken = p
			}
		}
		if taken == nil {
			t.Fatalf("iter %d: no feasible path\n%s", iter, prog)
		}
		for i := 0; i < 8; i++ {
			name := lifter.RegName(arm.X(i))
			want := m.Regs[i]
			var got uint64
			if e, written := taken.Regs[name]; written {
				got = a.EvalBV(e)
			} else {
				got = regs[name]
			}
			if got != want {
				t.Fatalf("iter %d: register %s: symexec %#x vs micro %#x\nprogram:\n%s\ninputs: %v",
					iter, name, got, want, prog, regs)
			}
		}
		// Memory agreement on the shared window plus any stored addresses.
		fin := expr.NewAssignment()
		fin.BV = a.BV
		fin.Mem = a.Mem
		for i := 0; i < 8; i++ {
			addr := 0x10000 + uint64(i)*8
			got := fin.EvalBV(expr.NewRead(taken.Mem, expr.C64(addr)))
			if got != m.ReadMem(addr) {
				t.Fatalf("iter %d: memory %#x: symexec %#x vs micro %#x\n%s",
					iter, addr, got, m.ReadMem(addr), prog)
			}
		}
	}
}
