package scamv

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"scamv/internal/arm"
	"scamv/internal/core"

	"scamv/internal/gen"
	"scamv/internal/logdb"
	"scamv/internal/micro"
	"scamv/internal/obs"
)

// Reduced-scale campaign shape tests: each asserts the qualitative outcome
// the paper reports for the corresponding Table 1 / Fig. 7 column. The
// benchmarks in bench_test.go run the same campaigns at larger scale.

func TestCampaignMPartShape(t *testing.T) {
	unguided, refined := MPartExperiments(false, 16, 40, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: prefetching violates cache partitioning; refinement finds many
	// more counterexamples than unguided search.
	if rr.Counterexamples == 0 {
		t.Error("refined M_part validation must expose the prefetcher leak")
	}
	if ru.Counterexamples >= rr.Counterexamples {
		t.Errorf("refinement should dominate: unguided %d vs refined %d",
			ru.Counterexamples, rr.Counterexamples)
	}
	if rr.ProgramsWithCounter == 0 {
		t.Error("some programs must have counterexamples")
	}
}

func TestCampaignMPartPageAlignedShape(t *testing.T) {
	unguided, refined := MPartExperiments(true, 10, 40, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: prefetching stops at the page boundary, so the page-aligned
	// partition shows no counterexamples with or without refinement.
	if ru.Counterexamples != 0 || rr.Counterexamples != 0 {
		t.Errorf("page-aligned partitioning should be tight: unguided %d, refined %d",
			ru.Counterexamples, rr.Counterexamples)
	}
}

func TestCampaignMCtTemplateAShape(t *testing.T) {
	unguided, refined := MCtExperiments(gen.TemplateA{}, 8, 25, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	// §6.3: the refined model exposes SiSCloak on virtually every program;
	// unguided testing finds at most a rare aliased subclass.
	if rr.ProgramsWithCounter < rr.Programs/2 {
		t.Errorf("refinement should invalidate most programs: %d/%d",
			rr.ProgramsWithCounter, rr.Programs)
	}
	if ru.Counterexamples*10 > rr.Counterexamples {
		t.Errorf("refined counterexamples should dominate: %d vs %d",
			ru.Counterexamples, rr.Counterexamples)
	}
	if rr.Found && ru.Found && rr.TTC > ru.TTC {
		t.Error("refinement should find the first counterexample faster")
	}
}

func TestCampaignMCtTemplateBShape(t *testing.T) {
	unguided, refined := MCtExperiments(gen.TemplateB{}, 10, 20, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	// §6.3: without refinement no counterexamples at all for Template B.
	if ru.Counterexamples != 0 {
		t.Errorf("unguided Template B should find nothing, found %d", ru.Counterexamples)
	}
	if rr.Counterexamples == 0 || rr.ProgramsWithCounter == 0 {
		t.Error("refined Template B must find counterexamples")
	}
}

func TestCampaignFig7TemplateCShape(t *testing.T) {
	unguided, refined := MCtExperiments(gen.TemplateC{}, 3, 60, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	// §6.5: M_ct on Template C is unsound (SiSCloak-class leak through the
	// first transient load), but only refinement can expose it.
	if ru.Counterexamples != 0 {
		t.Errorf("unguided Template C should find nothing, found %d", ru.Counterexamples)
	}
	if rr.Counterexamples == 0 {
		t.Error("refined Template C must find counterexamples")
	}
	// Roughly half of the refined experiments distinguish (the slot
	// coverage alternates between the issuing first load and the
	// taint-blocked second one). The artifact checklist says ~42%.
	frac := float64(rr.Counterexamples) / float64(rr.Experiments)
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("Template C counterexample fraction out of band: %.2f", frac)
	}
}

func TestCampaignMSpec1Shapes(t *testing.T) {
	// §6.5: M_spec1 is consistent with the hardware on Template C (the
	// dependent second load never issues: no Spectre-PHT on the A53) ...
	rc, err := Run(MSpec1Experiment(gen.TemplateC{}, 3, 60, 2021))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Counterexamples != 0 {
		t.Errorf("Mspec1 on Template C should be consistent, found %d", rc.Counterexamples)
	}
	// ... but NOT on Template B: two causally independent loads both issue.
	rb, err := Run(MSpec1Experiment(gen.TemplateB{}, 10, 20, 2021))
	if err != nil {
		t.Fatal(err)
	}
	if rb.Counterexamples == 0 {
		t.Error("Mspec1 on Template B must be invalidated (independent double loads)")
	}
}

func TestCampaignStraightLineShape(t *testing.T) {
	r, err := Run(StraightLineExperiment(8, 40, 2021))
	if err != nil {
		t.Fatal(err)
	}
	// §6.5: no straight-line speculation after unconditional direct
	// branches on the modelled core.
	if r.Counterexamples != 0 {
		t.Errorf("straight-line speculation counterexamples on a core without it: %d", r.Counterexamples)
	}
	if r.Experiments == 0 {
		t.Error("the campaign must still generate and execute experiments")
	}
}

func TestRepairConvergesTemplateC(t *testing.T) {
	base := Experiment{
		Name:            "repair-C",
		Template:        gen.TemplateC{},
		Programs:        2,
		TestsPerProgram: 30,
		Seed:            7,
	}
	rep, err := RepairModel(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated {
		t.Fatalf("repair did not converge:\n%s", rep)
	}
	// Template C: the first transient load leaks (K=0 invalid), the
	// dependent second never issues, so K=1 (M_spec1) suffices.
	if rep.FinalK != 1 {
		t.Errorf("expected repair to converge at K=1, got %d:\n%s", rep.FinalK, rep)
	}
	if rep.Steps[0].Result.Counterexamples == 0 {
		t.Error("K=0 (plain M_ct) must be invalidated during repair")
	}
}

func TestRepairConvergesTemplateB(t *testing.T) {
	base := Experiment{
		Name:            "repair-B",
		Template:        gen.TemplateB{},
		Programs:        6,
		TestsPerProgram: 20,
		Seed:            7,
	}
	rep, err := RepairModel(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Validated {
		t.Fatalf("repair did not converge:\n%s", rep)
	}
	// Template B bodies have up to two independent loads, both of which
	// issue transiently: repair must include both (K=2).
	if rep.FinalK != 2 {
		t.Errorf("expected repair to converge at K=2, got %d:\n%s", rep.FinalK, rep)
	}
}

func TestPipelineSingleProgram(t *testing.T) {
	pl, err := NewPipeline(gen.SiSCloak1(), &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Paths) != 2 {
		t.Fatalf("paths: %d", len(pl.Paths))
	}
	for _, want := range []string{"x0", "x1", "x2", "x5", "x7"} {
		found := false
		for _, r := range pl.Registers {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("register %s missing from %v", want, pl.Registers)
		}
	}
	e := Experiment{Speculative: true, Refined: true, Seed: 1}
	en := e.WithDefaults()
	g := pl.Generator(&en, 3)
	tc, ok := g.Next()
	if !ok {
		t.Fatal("no test case for the SiSCloak program")
	}
	train, ok := pl.TrainingState(tc.PathA, 3)
	if !ok {
		t.Fatal("no training state")
	}
	v, err := pl.ExecuteTestCase(&en, tc, train, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v != Counterexample {
		t.Errorf("the Fig. 6 SiSCloak program should yield a counterexample, got %v", v)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	_, refined := MCtExperiments(gen.TemplateA{}, 3, 10, 99)
	r1, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counterexamples != r2.Counterexamples || r1.Experiments != r2.Experiments ||
		r1.Inconclusive != r2.Inconclusive {
		t.Errorf("non-deterministic campaign: %+v vs %+v", r1, r2)
	}
}

func TestRunWritesLog(t *testing.T) {
	var buf bytes.Buffer
	db := logdb.NewWriter(&buf)
	_, refined := MCtExperiments(gen.TemplateA{}, 2, 5, 3)
	refined.Log = db
	res, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := logdb.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Experiments {
		t.Fatalf("log records %d != experiments %d", len(recs), res.Experiments)
	}
	counter := 0
	for _, r := range recs {
		if r.Verdict == "counterexample" {
			counter++
		}
	}
	if counter != res.Counterexamples {
		t.Errorf("log counterexamples %d != result %d", counter, res.Counterexamples)
	}
}

func TestFormatTable(t *testing.T) {
	r := &Result{
		Name: "x", Model: "Mct", Refinement: "Mspec", Coverage: "Mpc",
		Programs: 10, ProgramsWithCounter: 5, Experiments: 100,
		Counterexamples: 50, Inconclusive: 2, Found: true,
	}
	out := FormatTable(r, r)
	for _, want := range []string{"Mct", "Mspec", "Prog. w. Count.", "T.T.C."} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(r.Summary(), "50 counterexamples") {
		t.Errorf("summary: %s", r.Summary())
	}
}

func TestWithDefaults(t *testing.T) {
	e := Experiment{}
	d := e.WithDefaults()
	if d.Repeats != 10 || d.TrainRuns != 4 || d.Micro.Sets == 0 || d.AttackerView == nil {
		t.Errorf("defaults not applied: %+v", d)
	}
	// Noise survives defaulting.
	e2 := Experiment{Micro: micro.Config{NoiseProb: 0.5}}
	if d2 := e2.WithDefaults(); d2.Micro.NoiseProb != 0.5 || d2.Micro.Sets == 0 {
		t.Errorf("noise lost: %+v", d2.Micro)
	}
}

func TestVerdictString(t *testing.T) {
	if Indistinguishable.String() != "indistinguishable" ||
		Counterexample.String() != "counterexample" ||
		Inconclusive.String() != "inconclusive" {
		t.Error("verdict strings")
	}
	// Out-of-range values must render diagnosably, not panic or alias a
	// real verdict (they can appear when decoding a corrupted log).
	if got := Verdict(42).String(); got != "verdict(42)" {
		t.Errorf("out-of-range verdict: %q", got)
	}
	if got := Verdict(-1).String(); got != "verdict(-1)" {
		t.Errorf("negative verdict: %q", got)
	}
}

func TestCampaignMTimeShape(t *testing.T) {
	unguided, refined := MTimeExperiments(6, 15, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	// The §3 illustration: multiply operands are unobserved by M_ct, so
	// unguided minimal-model pairs never differ in multiplier size class,
	// while the refined model forces a class difference — and the
	// early-terminating multiplier turns it into a timing counterexample.
	if ru.Counterexamples != 0 {
		t.Errorf("unguided timing campaign found %d", ru.Counterexamples)
	}
	if rr.Counterexamples == 0 {
		t.Error("refined timing campaign must expose the variable-time multiplier")
	}
	// Without the timing attacker the channel is invisible: cache states
	// are identical.
	noTimer := refined
	noTimer.TimingAttacker = false
	rn, err := Run(noTimer)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Counterexamples != 0 {
		t.Errorf("cache-only attacker cannot see the timing channel, found %d", rn.Counterexamples)
	}
	// On a constant-time multiplier core the model is sound.
	fixed := refined
	fixed.Micro.VarTimeMul = false
	rf, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Counterexamples != 0 {
		t.Errorf("constant-time multiplier cannot leak, found %d", rf.Counterexamples)
	}
}

// constantTimePlatform wraps the simulator but hides the timing channel,
// standing in for a hypothetical core with a constant-time multiplier —
// exercising the Platform extension point.
type constantTimePlatform struct{ inner SimPlatform }

func (p constantTimePlatform) Execute(ctx context.Context, e *Experiment, prog *arm.Program, st, train *core.State, noise *rand.Rand) (Measurement, error) {
	m, err := p.inner.Execute(ctx, e, prog, st, train, noise)
	m.Cycles = 0
	return m, err
}

func TestCustomPlatform(t *testing.T) {
	_, refined := MTimeExperiments(4, 10, 5)
	refined.Platform = constantTimePlatform{}
	r, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	if r.Counterexamples != 0 {
		t.Errorf("platform without a timing channel cannot leak, found %d", r.Counterexamples)
	}
	if r.Experiments == 0 {
		t.Error("experiments must still execute")
	}
}

func TestMeasurementDistinguishable(t *testing.T) {
	snapA := micro.NewCache(micro.DefaultConfig()).Snapshot(micro.FullView)
	c := micro.NewCache(micro.DefaultConfig())
	c.Access(0x40)
	snapB := c.Snapshot(micro.FullView)
	a := Measurement{Snapshot: snapA, Cycles: 10}
	b := Measurement{Snapshot: snapB, Cycles: 10}
	if !a.Distinguishable(b, false) {
		t.Error("different snapshots must distinguish")
	}
	sameSnapDiffTime := Measurement{Snapshot: snapA, Cycles: 11}
	if a.Distinguishable(sameSnapDiffTime, false) {
		t.Error("cache attacker must not see timing")
	}
	if !a.Distinguishable(sameSnapDiffTime, true) {
		t.Error("timing attacker must see timing")
	}
}

func TestGeneratorExhaustionStopsCampaign(t *testing.T) {
	// A program whose refined relation is unsatisfiable (no speculation
	// possible: straight-line, no branch) must yield zero experiments
	// without erroring.
	e := Experiment{
		Name:            "exhaust",
		Template:        fixedTemplate{prog: mustParse("movz x0, #1\nhlt")},
		Model:           &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll},
		Refined:         true,
		Programs:        1,
		TestsPerProgram: 5,
		Seed:            1,
	}
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Experiments != 0 {
		t.Errorf("no refined test cases should exist, got %d experiments", r.Experiments)
	}
}

type fixedTemplate struct{ prog *arm.Program }

func (f fixedTemplate) Name() string                              { return f.prog.Name }
func (f fixedTemplate) Generate(_ *rand.Rand, _ int) *arm.Program { return f.prog }

func mustParse(src string) *arm.Program {
	p, err := arm.Parse("fixed", src)
	if err != nil {
		panic(err)
	}
	return p
}

func TestParallelMatchesSequential(t *testing.T) {
	_, refined := MCtExperiments(gen.TemplateB{}, 8, 15, 31)
	seq, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	par := refined
	par.Parallel = 4
	pr, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Experiments != pr.Experiments || seq.Counterexamples != pr.Counterexamples ||
		seq.Inconclusive != pr.Inconclusive || seq.ProgramsWithCounter != pr.ProgramsWithCounter {
		t.Errorf("parallel counts diverge:\nseq %+v\npar %+v", seq, pr)
	}
}

func TestParallelLogOrderDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	run := func(buf *bytes.Buffer, workers int) {
		db := logdb.NewWriter(buf)
		_, refined := MCtExperiments(gen.TemplateA{}, 6, 8, 17)
		refined.Log = db
		refined.Parallel = workers
		if _, err := Run(refined); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run(&b1, 1)
	run(&b2, 3)
	r1, err := logdb.Read(&b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := logdb.Read(&b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		a, b := r1[i], r2[i]
		a.GenMicros, a.ExeMicros = 0, 0
		b.GenMicros, b.ExeMicros = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestCampaignMPCModelShape(t *testing.T) {
	// The program-counter security model abstracts control-flow timing but
	// is unsound against a cache attacker: refinement with cache-line
	// observations invalidates it on essentially every program with a load.
	unguided, refined := MPCModelExperiments(6, 15, 2021)
	ru, err := Run(unguided)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(refined)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Counterexamples == 0 || rr.ProgramsWithCounter < rr.Programs/2 {
		t.Errorf("refined PC-model campaign too weak: %d cex, %d/%d programs",
			rr.Counterexamples, rr.ProgramsWithCounter, rr.Programs)
	}
	if ru.Counterexamples >= rr.Counterexamples {
		t.Errorf("refinement should dominate: %d vs %d", ru.Counterexamples, rr.Counterexamples)
	}
}

func TestRefinementNames(t *testing.T) {
	cases := []struct {
		e    Experiment
		want string
	}{
		{Experiment{Model: &obs.MPart{WithRefinement: true}, Refined: true}, "Mpart'"},
		{Experiment{Model: &obs.MPart{WithRefinement: true}, Refined: false}, "No"},
		{Experiment{Model: &obs.MCt{Spec: obs.SpecAll}, Refined: true}, "Mspec"},
		{Experiment{Model: &obs.MCt{Spec: obs.SpecStraightLine}, Refined: true}, "Mspec'"},
		{Experiment{Model: &obs.MTime{WithRefinement: true}, Refined: true}, "Mtime"},
		{Experiment{Model: &obs.MPCModel{WithRefinement: true}, Refined: true}, "Mct"},
	}
	for i, c := range cases {
		if got := refinementName(&c.e); got != c.want {
			t.Errorf("case %d: %q != %q", i, got, c.want)
		}
	}
}

func TestNewPipelineRejectsBadProgram(t *testing.T) {
	p := arm.NewProgram("bad")
	p.Add(arm.Instr{Op: arm.B, Label: "nowhere"})
	if _, err := NewPipeline(p, &obs.MCt{Geom: obs.DefaultGeometry}); err == nil {
		t.Fatal("expected error for unresolved branch")
	}
}

func TestIsArchReg(t *testing.T) {
	for name, want := range map[string]bool{
		"x0": true, "x30": true, "x": false, "y1": false,
		"_cca": false, "#x2": false, "x1a": false, "": false,
	} {
		if got := isArchReg(name); got != want {
			t.Errorf("isArchReg(%q) = %v", name, got)
		}
	}
}
