package scamv

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchPortfolioRow is one solving-mode entry in BENCH_portfolio.json.
type benchPortfolioRow struct {
	Mode            string  `json:"mode"`
	Portfolio       int     `json:"portfolio"`
	SharedCache     bool    `json:"shared_cache"`
	Experiments     int     `json:"experiments"`
	Counterexamples int     `json:"counterexamples"`
	Inconclusive    int     `json:"inconclusive"`
	Queries         int     `json:"queries"`
	GenTimeMS       float64 `json:"gen_time_ms"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	ShapeHits       int64   `json:"shape_hits,omitempty"`
	ShapeMisses     int64   `json:"shape_misses,omitempty"`
}

func benchPortfolioRun(t *testing.T, mode string, portfolio int, shared bool) benchPortfolioRow {
	t.Helper()
	e := benchGenCampaign(false)
	e.Programs = 4
	e.Portfolio = portfolio
	e.SharedCache = shared
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	row := benchPortfolioRow{
		Mode:            mode,
		Portfolio:       portfolio,
		SharedCache:     shared,
		Experiments:     res.Experiments,
		Counterexamples: res.Counterexamples,
		Inconclusive:    res.Inconclusive,
		Queries:         res.Queries,
		GenTimeMS:       float64(res.GenTime.Microseconds()) / 1e3,
		ShapeHits:       res.ShapeHits,
		ShapeMisses:     res.ShapeMisses,
	}
	if res.GenTime > 0 {
		row.QueriesPerSec = float64(res.Queries) / res.GenTime.Seconds()
	}
	return row
}

// TestWriteBenchPortfolio measures the portfolio/shape-cache solving modes
// against the plain incremental baseline on the MLine campaign and writes
// BENCH_portfolio.json. Gated behind BENCH_PORTFOLIO=1:
//
//	BENCH_PORTFOLIO=1 go test -run TestWriteBenchPortfolio -count=1 .
//
// (or `make bench-portfolio`). What it asserts:
//
//   - Experiments, inconclusive and query counts are identical in every
//     mode — neither racing nor caching may change what gets asked.
//   - The portfolio family (N=1, N=4, N=4+cache) is internally identical
//     on every count: portfolio size and cache state never change results.
//   - The shape cache alone (portfolio off) changes nothing at all.
//   - Counterexample counts between the plain incremental baseline and the
//     portfolio family may differ slightly and that is expected: a lone
//     incremental solver keeps learnt clauses across queries, while
//     portfolio workers rewind to their base state per query (the price of
//     size-independence), so Sat models — not verdicts — can land on
//     different concrete test inputs. The divergence is reported, not
//     asserted away.
//
// Wall-clock speedup of the racing modes exists only when the helpers have
// cores to run on, so like bench-campaign the speedup target is asserted
// only on multi-core runners; single-core runs record the numbers and the
// (expected) oversubscription slowdown.
func TestWriteBenchPortfolio(t *testing.T) {
	if os.Getenv("BENCH_PORTFOLIO") == "" {
		t.Skip("set BENCH_PORTFOLIO=1 to run the portfolio benchmark")
	}
	base := benchPortfolioRun(t, "incremental", 0, false)
	cache := benchPortfolioRun(t, "incremental+cache", 0, true)
	p1 := benchPortfolioRun(t, "portfolio-1", 1, false)
	p4 := benchPortfolioRun(t, "portfolio-4", 4, false)
	p4c := benchPortfolioRun(t, "portfolio-4+cache", 4, true)

	counts := func(r benchPortfolioRow) [3]int {
		return [3]int{r.Experiments, r.Inconclusive, r.Queries}
	}
	all := []benchPortfolioRow{base, cache, p1, p4, p4c}
	for _, r := range all[1:] {
		if counts(r) != counts(base) {
			t.Errorf("%s changed exp/inconclusive/query counts: %+v vs baseline %+v", r.Mode, r, base)
		}
	}
	if cache.Counterexamples != base.Counterexamples {
		t.Errorf("shape cache alone changed counterexamples: %d vs %d", cache.Counterexamples, base.Counterexamples)
	}
	if p4.Counterexamples != p1.Counterexamples || p4c.Counterexamples != p1.Counterexamples {
		t.Errorf("portfolio family diverges: p1 %d, p4 %d, p4+cache %d counterexamples",
			p1.Counterexamples, p4.Counterexamples, p4c.Counterexamples)
	}
	for _, r := range []benchPortfolioRow{cache, p4c} {
		if r.ShapeMisses == 0 || r.ShapeHits == 0 {
			t.Errorf("%s: cache traffic missing (hits %d, misses %d)", r.Mode, r.ShapeHits, r.ShapeMisses)
		}
	}
	for _, r := range []benchPortfolioRow{base, p1, p4} {
		if r.ShapeHits != 0 || r.ShapeMisses != 0 {
			t.Errorf("%s: cache traffic without a cache (hits %d, misses %d)", r.Mode, r.ShapeHits, r.ShapeMisses)
		}
	}

	speedup := func(r benchPortfolioRow) float64 {
		if r.GenTimeMS == 0 {
			return 0
		}
		return base.GenTimeMS / r.GenTimeMS
	}
	out := struct {
		Date            string              `json:"date"`
		Campaign        string              `json:"campaign"`
		CPUs            int                 `json:"cpus"`
		Rows            []benchPortfolioRow `json:"rows"`
		CacheSpeedup    float64             `json:"cache_speedup"`
		Portfolio4      float64             `json:"portfolio4_speedup"`
		Portfolio4Cache float64             `json:"portfolio4_cache_speedup"`
	}{
		Date:            time.Now().UTC().Format("2006-01-02"),
		Campaign:        "MLine-support, TemplateA^3 (8 paths), 128 classes, refined MCt/SpecAll, 4 programs x 40 tests, seed 2021",
		CPUs:            runtime.NumCPU(),
		Rows:            all,
		CacheSpeedup:    speedup(cache),
		Portfolio4:      speedup(p4),
		Portfolio4Cache: speedup(p4c),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_portfolio.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("gen time: baseline %.1fms, +cache %.1fms (%.2fx), portfolio-4 %.1fms (%.2fx), portfolio-4+cache %.1fms (%.2fx) on %d CPUs",
		base.GenTimeMS, cache.GenTimeMS, speedup(cache), p4.GenTimeMS, speedup(p4),
		p4c.GenTimeMS, speedup(p4c), runtime.NumCPU())
	if runtime.NumCPU() >= 4 {
		if s := speedup(p4c); s < 3 {
			t.Errorf("portfolio-4+cache speedup %.2fx below the 3x target on a %d-core runner", s, runtime.NumCPU())
		}
	} else {
		t.Logf("single/dual-core runner: racing oversubscribes the CPU, speedup target not asserted")
	}
}
