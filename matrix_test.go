package scamv

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scamv/internal/logdb"
	"scamv/internal/telemetry"
)

// matrixCampaign is the small deterministic matrix campaign the matrix tests
// share: the golden MLine generation config (default microarchitecture, no
// noise) swept over the three headline platforms.
func matrixCampaign(t *testing.T) Experiment {
	t.Helper()
	e := benchGenCampaign(false)
	e.Name = "matrix-mct"
	e.Programs = 2
	e.TestsPerProgram = 8
	specs, err := PlatformsFromPresets("a53", "a72", "m0")
	if err != nil {
		t.Fatal(err)
	}
	e.Platforms = specs
	return e
}

// platformCounts strips the wall-clock field from a matrix row so runs can be
// compared on the deterministic part.
func platformCounts(r PlatformResult) PlatformResult {
	r.ExeTime = 0
	return r
}

// TestMatrixPrimaryRowMatchesSinglePlatform is the backward-compatibility
// anchor of the matrix driver: a matrix whose first platform is the default
// A53-like core must reproduce the equivalent single-platform campaign — the
// top-level counts AND the a53 row, seed for seed. The a53 preset IS
// DefaultConfig (TestPresetA53IsDefault), so the single campaign below runs
// the identical simulated machine.
func TestMatrixPrimaryRowMatchesSinglePlatform(t *testing.T) {
	single := matrixCampaign(t)
	single.Platforms = nil
	rs, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(matrixCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Experiments != rm.Experiments || rs.Counterexamples != rm.Counterexamples ||
		rs.Inconclusive != rm.Inconclusive || rs.Programs != rm.Programs ||
		rs.ProgramsWithCounter != rm.ProgramsWithCounter || rs.Queries != rm.Queries ||
		rs.Found != rm.Found || rs.FirstCEProgram != rm.FirstCEProgram || rs.FirstCETest != rm.FirstCETest {
		t.Errorf("matrix top-level counts diverge from the single-platform campaign:\nsingle %+v\nmatrix %+v", rs, rm)
	}
	if len(rm.Matrix) != 3 {
		t.Fatalf("expected 3 matrix rows, got %d", len(rm.Matrix))
	}
	a53 := rm.Matrix[0]
	if a53.Platform != "a53" {
		t.Fatalf("row 0 = %q, want a53", a53.Platform)
	}
	if a53.Experiments != rs.Experiments || a53.Counterexamples != rs.Counterexamples ||
		a53.Inconclusive != rs.Inconclusive || a53.Found != rs.Found ||
		a53.FirstCEProgram != rs.FirstCEProgram || a53.FirstCETest != rs.FirstCETest {
		t.Errorf("a53 row diverges from the single-platform campaign:\nsingle %+v\nrow    %+v", rs, a53)
	}
	// Every platform executed the same generated suite.
	for _, row := range rm.Matrix {
		if row.Experiments != rs.Experiments || row.SkippedTests != 0 {
			t.Errorf("platform %s executed %d tests (%d skipped), want %d",
				row.Platform, row.Experiments, row.SkippedTests, rs.Experiments)
		}
	}
	if len(rs.Matrix) != 0 {
		t.Error("single-platform campaign must not report matrix rows")
	}
}

// TestMatrixGolden pins the rendered soundness table to a committed golden
// file: run-to-run byte identity per seed is the matrix campaign's
// determinism contract. Regenerate with UPDATE_MATRIX_GOLDEN=1.
func TestMatrixGolden(t *testing.T) {
	r1, err := Run(matrixCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(matrixCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	got := FormatMatrix(r1)
	if again := FormatMatrix(r2); got != again {
		t.Fatalf("matrix rendering not byte-identical across runs:\n--- run 1\n%s--- run 2\n%s", got, again)
	}
	for i := range r1.Matrix {
		if platformCounts(r1.Matrix[i]) != platformCounts(r2.Matrix[i]) {
			t.Errorf("row %d counts differ across runs:\n%+v\n%+v", i, r1.Matrix[i], r2.Matrix[i])
		}
	}
	golden := filepath.Join("testdata", "matrix_golden.txt")
	if os.Getenv("UPDATE_MATRIX_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_MATRIX_GOLDEN=1 go test -run TestMatrixGolden)", err)
	}
	if got != string(want) {
		t.Errorf("matrix table drifted from %s:\n--- got\n%s--- want\n%s", golden, got, want)
	}
}

// TestMatrixStagedMatchesMonolithic: the batch loop lives in the shared
// Execute stage body, so the two engines must produce identical matrix rows,
// sequentially and with stage overlap.
func TestMatrixStagedMatchesMonolithic(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		mono := matrixCampaign(t)
		mono.Monolithic = true
		mono.Parallel = parallel
		rm, err := Run(mono)
		if err != nil {
			t.Fatal(err)
		}
		staged := matrixCampaign(t)
		staged.Parallel = parallel
		rs, err := Run(staged)
		if err != nil {
			t.Fatal(err)
		}
		if len(rm.Matrix) != len(rs.Matrix) {
			t.Fatalf("parallel=%d: row counts differ: %d vs %d", parallel, len(rm.Matrix), len(rs.Matrix))
		}
		for i := range rm.Matrix {
			if platformCounts(rm.Matrix[i]) != platformCounts(rs.Matrix[i]) {
				t.Errorf("parallel=%d: row %d diverges:\nmonolithic %+v\nstaged     %+v",
					parallel, i, rm.Matrix[i], rs.Matrix[i])
			}
		}
	}
}

// TestMatrixLogAndTelemetry: every executed test contributes one log record
// and one telemetry "platform" record per platform, records carry the
// platform name, and the tracer aggregates per-platform counts.
func TestMatrixLogAndTelemetry(t *testing.T) {
	var logBuf, traceBuf bytes.Buffer
	e := matrixCampaign(t)
	e.Log = logdb.NewWriter(&logBuf)
	tr := telemetry.New(&traceBuf)
	e.Trace = tr
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := logdb.Read(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	perPlatform := map[string]int{}
	for _, rec := range recs {
		if rec.Platform == "" {
			t.Fatalf("matrix log record without platform: %+v", rec)
		}
		perPlatform[rec.Platform]++
	}
	for _, row := range r.Matrix {
		if perPlatform[row.Platform] != row.Experiments {
			t.Errorf("platform %s: %d log records, want %d",
				row.Platform, perPlatform[row.Platform], row.Experiments)
		}
	}

	trecs, err := telemetry.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	platRecs := map[string]int{}
	for _, rec := range trecs {
		if rec.Kind == "platform" {
			if rec.V != telemetry.SchemaVersion {
				t.Fatalf("platform record at schema v%d, want v%d", rec.V, telemetry.SchemaVersion)
			}
			platRecs[rec.Name]++
		}
	}
	for _, row := range r.Matrix {
		if platRecs[row.Platform] != row.Experiments {
			t.Errorf("platform %s: %d trace records, want %d",
				row.Platform, platRecs[row.Platform], row.Experiments)
		}
	}
	snap := tr.Snapshot()
	if len(snap.Platforms) != len(r.Matrix) {
		t.Fatalf("tracer aggregated %d platforms, want %d", len(snap.Platforms), len(r.Matrix))
	}
	for _, pc := range snap.Platforms {
		for _, row := range r.Matrix {
			if row.Platform == pc.Name && (int(pc.Experiments) != row.Experiments ||
				int(pc.Counterexamples) != row.Counterexamples) {
				t.Errorf("tracer aggregate for %s = %+v, result row = %+v", pc.Name, pc, row)
			}
		}
	}
}

// TestMatrixSinglePlatformLogUnchanged: a single-platform campaign's log
// records must not grow a platform field (byte-compatibility of existing
// logs and their consumers).
func TestMatrixSinglePlatformLogUnchanged(t *testing.T) {
	var buf bytes.Buffer
	e := matrixCampaign(t)
	e.Platforms = nil
	e.Log = logdb.NewWriter(&buf)
	if _, err := Run(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Log.Close(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		if _, has := m["platform"]; has {
			t.Fatalf("single-platform record leaked a platform field: %s", line)
		}
	}
}

// TestMatrixValidation: matrix platform lists with empty or duplicate names
// are rejected before any work runs.
func TestMatrixValidation(t *testing.T) {
	e := matrixCampaign(t)
	e.Platforms[1].Name = ""
	if _, err := Run(e); err == nil || !strings.Contains(err.Error(), "no name") {
		t.Errorf("unnamed platform: err = %v", err)
	}
	e = matrixCampaign(t)
	e.Platforms[2].Name = e.Platforms[0].Name
	if _, err := Run(e); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate platform: err = %v", err)
	}
	if _, err := PlatformsFromPresets("a53", "not-a-core"); err == nil {
		t.Error("unknown preset name must error")
	}
}

// TestFormatTableRendersMatrix: FormatTable appends the per-platform block
// for matrix results and the platform verdict column renders sound/unsound.
func TestFormatTableRendersMatrix(t *testing.T) {
	r, err := Run(matrixCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(r)
	for _, want := range []string{"matrix[matrix-mct]", "platform", "verdict", "a53", "a72", "m0"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable missing %q:\n%s", want, out)
		}
	}
	empty := &PlatformResult{Platform: "x"}
	if empty.Verdict() != "no-data" {
		t.Errorf("empty row verdict = %q", empty.Verdict())
	}
	unsound := &PlatformResult{Platform: "x", Experiments: 3, Counterexamples: 1}
	if unsound.Verdict() != "unsound" {
		t.Errorf("unsound row verdict = %q", unsound.Verdict())
	}
	sound := &PlatformResult{Platform: "x", Experiments: 3}
	if sound.Verdict() != "sound" {
		t.Errorf("sound row verdict = %q", sound.Verdict())
	}
}
