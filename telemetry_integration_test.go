package scamv

import (
	"bytes"
	"testing"

	"scamv/internal/gen"
	"scamv/internal/telemetry"
)

// traceCampaign is a small refined M_ct campaign for telemetry round trips.
func traceCampaign(monolithic bool) Experiment {
	_, refined := MCtExperiments(gen.TemplateA{}, 3, 6, 2021)
	refined.Name = "trace-mct-a"
	refined.Parallel = 2
	refined.Monolithic = monolithic
	return refined
}

// traceCounts aggregates a trace for engine-equivalence checks.
type traceCounts struct {
	campaigns, spans, queries, verdicts int
	cex                                 int
	spanStages                          map[string]int
	statuses                            map[string]int
}

func countTrace(recs []telemetry.Record) traceCounts {
	c := traceCounts{spanStages: map[string]int{}, statuses: map[string]int{}}
	for _, r := range recs {
		switch r.Kind {
		case "campaign":
			c.campaigns++
		case "span":
			c.spans++
			c.spanStages[r.Stage]++
		case "query":
			c.queries++
			c.statuses[r.Status]++
		case "verdict":
			c.verdicts++
			if r.Verdict == "counterexample" {
				c.cex++
			}
		}
	}
	return c
}

func runTraced(t *testing.T, monolithic bool) (*Result, []telemetry.Record, telemetry.Counters) {
	t.Helper()
	var buf bytes.Buffer
	tr := telemetry.New(&buf)
	e := traceCampaign(monolithic)
	e.Trace = tr
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, recs, tr.Snapshot()
}

// TestTraceMatchesResult checks that the JSONL trace of a staged campaign
// agrees record-for-record with the campaign Result: one span per program
// per stage, one query event per solver query, one verdict per experiment.
func TestTraceMatchesResult(t *testing.T) {
	res, recs, snap := runTraced(t, false)

	c := countTrace(recs)
	if c.campaigns != 1 {
		t.Errorf("campaign records = %d, want 1", c.campaigns)
	}
	if recs[0].Kind != "campaign" || recs[0].Name != "trace-mct-a" || recs[0].Programs != 3 {
		t.Errorf("first record must announce the campaign: %+v", recs[0])
	}
	for _, stage := range []string{"proggen", "encode", "lift", "symexec", "testgen", "execute"} {
		if c.spanStages[stage] != res.Programs {
			t.Errorf("stage %s has %d spans, want %d (one per program)",
				stage, c.spanStages[stage], res.Programs)
		}
	}
	if c.queries != res.Queries {
		t.Errorf("query events = %d, want Result.Queries = %d", c.queries, res.Queries)
	}
	if c.verdicts != res.Experiments {
		t.Errorf("verdict events = %d, want Result.Experiments = %d", c.verdicts, res.Experiments)
	}
	if c.cex != res.Counterexamples {
		t.Errorf("counterexample verdicts = %d, want %d", c.cex, res.Counterexamples)
	}
	if c.statuses["sat"] == 0 {
		t.Error("a campaign that generated tests must have sat queries")
	}
	// Query events carry effort: at least one must show search activity.
	var effort int64
	for _, r := range recs {
		if r.Kind == "query" {
			effort += r.Propagations + r.Decisions
		}
	}
	if effort == 0 {
		t.Error("query events carry no solver effort deltas")
	}

	// The live aggregates agree with the trace and the Result.
	if snap.Programs != int64(res.Programs) || snap.Experiments != int64(res.Experiments) ||
		snap.Counterexamples != int64(res.Counterexamples) || snap.Queries != int64(res.Queries) {
		t.Errorf("snapshot diverges from result: %+v vs %+v", snap, res)
	}
	if snap.TotalPrograms != 3 {
		t.Errorf("snapshot total programs = %d, want 3", snap.TotalPrograms)
	}
}

// TestTraceEngineEquivalence checks that the monolithic engine emits the
// same trace aggregate as the staged engine for the same seed — the
// telemetry spine must be engine-independent (satellite: -monolithic safety).
func TestTraceEngineEquivalence(t *testing.T) {
	resStaged, recsStaged, _ := runTraced(t, false)
	resMono, recsMono, _ := runTraced(t, true)

	if resMono.Experiments != resStaged.Experiments ||
		resMono.Counterexamples != resStaged.Counterexamples ||
		resMono.Queries != resStaged.Queries {
		t.Fatalf("engines diverge before telemetry comparison: %+v vs %+v", resMono, resStaged)
	}
	cs, cm := countTrace(recsStaged), countTrace(recsMono)
	if cs.spans != cm.spans || cs.queries != cm.queries || cs.verdicts != cm.verdicts || cs.cex != cm.cex {
		t.Errorf("trace shape differs across engines:\nstaged     %+v\nmonolithic %+v", cs, cm)
	}
	for stage, n := range cs.spanStages {
		if cm.spanStages[stage] != n {
			t.Errorf("stage %s: %d staged spans vs %d monolithic", stage, n, cm.spanStages[stage])
		}
	}
	if len(resMono.Stages) != 0 {
		t.Error("monolithic result should have no stage spine")
	}
	// The monolithic trace still supports the progress line via the
	// program-level fallback (and busy shares once spans exist).
	var tr telemetry.Counters
	tr.Programs, tr.TotalPrograms = int64(resMono.Programs), 3
	_ = telemetry.RenderProgress(tr, telemetry.Counters{}, 0)
}

// TestTracingDoesNotPerturbCounts ensures an attached tracer leaves the
// campaign's deterministic counts untouched (observation must not refine
// the observed system, as it were).
func TestTracingDoesNotPerturbCounts(t *testing.T) {
	plain := traceCampaign(false)
	res0, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	res1, _, _ := runTraced(t, false)
	if res0.Experiments != res1.Experiments || res0.Counterexamples != res1.Counterexamples ||
		res0.Inconclusive != res1.Inconclusive || res0.Queries != res1.Queries ||
		res0.FirstCEProgram != res1.FirstCEProgram || res0.FirstCETest != res1.FirstCETest {
		t.Errorf("tracing perturbed campaign counts:\nplain  %+v\ntraced %+v", res0, res1)
	}
}
