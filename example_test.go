package scamv_test

import (
	"fmt"
	"log"

	"scamv"
	"scamv/internal/arm"
	"scamv/internal/gen"
	"scamv/internal/obs"
)

// ExampleRun validates the constant-time model M_ct on Template C programs
// with the M_spec refinement: the campaign exposes the SiSCloak class of
// speculative leaks.
func ExampleRun() {
	_, refined := scamv.MCtExperiments(gen.TemplateC{}, 2, 40, 7)
	refined.Micro.NoiseProb = 0 // deterministic output for the example
	res, err := scamv.Run(refined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s invalidated: %v\n", res.Model, res.Counterexamples > 0)
	// Output:
	// model Mct+Mspec invalidated: true
}

// ExampleNewPipeline pushes a single hand-written program through the
// pipeline and prints its symbolic paths.
func ExampleNewPipeline() {
	prog, err := arm.Parse("victim", `
        ldr x2, [x0]
        cmp x0, x1
        b.hs end
        ldr x3, [x2]
    end:
        hlt
    `)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := scamv.NewPipeline(prog, &obs.MCt{Geom: obs.DefaultGeometry, Spec: obs.SpecAll})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths: %d\n", len(pl.Paths))
	for _, p := range pl.Paths {
		fmt.Printf("  M1 obs %d, refined obs %d\n", len(p.BaseObs()), len(p.RefinedObs()))
	}
	// Output:
	// paths: 2
	//   M1 obs 3, refined obs 0
	//   M1 obs 2, refined obs 1
}

// ExampleRepairModel repairs the unsound M_ct on Template C: one round of
// counterexamples promotes the first transient load into the model, after
// which validation passes.
func ExampleRepairModel() {
	rep, err := scamv.RepairModel(scamv.Experiment{
		Name:            "repair",
		Template:        gen.TemplateC{},
		Programs:        2,
		TestsPerProgram: 20,
		Seed:            7,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired to K=%d (validated: %v)\n", rep.FinalK, rep.Validated)
	// Output:
	// repaired to K=1 (validated: true)
}
