package scamv

import (
	"bytes"
	"reflect"
	"testing"

	"scamv/internal/logdb"
)

// runLogged runs a campaign and returns its result plus the log records with
// the wall-clock fields zeroed: every test case in order, with its paths,
// class, verdict, and state diff — the deterministic witness of what the
// campaign generated and observed.
func runLogged(t *testing.T, e Experiment) (*Result, []logdb.Record) {
	t.Helper()
	var buf bytes.Buffer
	db := logdb.NewWriter(&buf)
	e.Log = db
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := logdb.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].GenMicros, recs[i].ExeMicros = 0, 0
	}
	return res, recs
}

// TestPortfolioCampaignByteIdentical is the determinism contract of the
// portfolio backend: the golden MLine campaign produces byte-identical logs
// (same test cases, same verdicts, in the same order) at portfolio sizes 1
// and 4, with and without the shared shape cache — the canonical worker 0
// supplies every model, so racing helpers only change wall-clock time.
func TestPortfolioCampaignByteIdentical(t *testing.T) {
	base := benchGenCampaign(false)
	base.Programs = 2
	base.TestsPerProgram = 20 // full depth belongs to bench-portfolio; keep -race runs affordable

	p1 := base
	p1.Portfolio = 1
	_, log1 := runLogged(t, p1)

	p4 := base
	p4.Portfolio = 4
	p4.Parallel = 4
	res4, log4 := runLogged(t, p4)
	if !reflect.DeepEqual(log1, log4) {
		t.Errorf("portfolio 1 vs 4 campaign logs differ (%d vs %d records)", len(log1), len(log4))
	}
	if res4.Experiments == 0 {
		t.Fatal("portfolio campaign generated nothing")
	}

	p4c := base
	p4c.Portfolio = 4
	p4c.SharedCache = true
	p4c.Parallel = 4
	res4c, log4c := runLogged(t, p4c)
	if !reflect.DeepEqual(log1, log4c) {
		t.Errorf("portfolio 4 + shared cache diverges from portfolio 1 (%d vs %d records)", len(log1), len(log4c))
	}
	if res4c.ShapeMisses == 0 {
		t.Error("shared cache enabled but no shape was ever encoded")
	}
	if res4c.ShapeHits == 0 {
		t.Error("alpha-equivalent MLine programs should hit the shape cache")
	}
}

// TestSharedCacheCampaignByteIdentical checks the shape cache alone (classic
// single-solver backend): results must be byte-identical with the cache on
// or off, while the cache records hits across alpha-equivalent programs.
func TestSharedCacheCampaignByteIdentical(t *testing.T) {
	base := benchGenCampaign(false)
	base.Programs = 3
	base.TestsPerProgram = 20

	off, logOff := runLogged(t, base)

	on := base
	on.SharedCache = true
	resOn, logOn := runLogged(t, on)

	if !reflect.DeepEqual(logOff, logOn) {
		for i := range logOff {
			if i < len(logOn) && !reflect.DeepEqual(logOff[i], logOn[i]) {
				t.Errorf("first divergent record %d:\n off %+v\n on  %+v", i, logOff[i], logOn[i])
				break
			}
		}
		t.Errorf("shared cache changed campaign results (%d vs %d records)", len(logOff), len(logOn))
	}
	if off.Experiments != resOn.Experiments || off.Counterexamples != resOn.Counterexamples ||
		off.Queries != resOn.Queries {
		t.Errorf("counts diverge: off %+v on %+v", off, resOn)
	}
	if resOn.ShapeMisses == 0 || resOn.ShapeHits == 0 {
		t.Errorf("cache traffic missing: hits %d misses %d", resOn.ShapeHits, resOn.ShapeMisses)
	}
	if off.ShapeHits != 0 || off.ShapeMisses != 0 {
		t.Errorf("cache-off campaign reported cache traffic: %+v", off)
	}
}

// TestPortfolioSmokeRace is the CI smoke of the portfolio stack under the
// race detector (make portfolio-smoke): a one-program MLine campaign with
// racing workers, the shared shape cache, and staged-engine parallelism all
// on at once — the exact concurrency mix of a production campaign, shrunk
// until -race can afford it.
func TestPortfolioSmokeRace(t *testing.T) {
	e := benchGenCampaign(false)
	e.Programs = 1
	e.TestsPerProgram = 10
	e.Portfolio = 2
	e.SharedCache = true
	e.Parallel = 2
	res, log := runLogged(t, e)
	if res.Experiments == 0 {
		t.Fatal("smoke campaign generated nothing")
	}
	if len(log) == 0 {
		t.Fatal("smoke campaign logged nothing")
	}
	if res.ShapeMisses == 0 {
		t.Error("shared cache enabled but no shape was encoded")
	}
}
