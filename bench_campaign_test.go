package scamv

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchCampaignRow is one engine's entry in BENCH_campaign.json.
type benchCampaignRow struct {
	Engine          string          `json:"engine"`
	Parallel        int             `json:"parallel"`
	Programs        int             `json:"programs"`
	Experiments     int             `json:"experiments"`
	Counterexamples int             `json:"counterexamples"`
	Inconclusive    int             `json:"inconclusive"`
	Queries         int             `json:"queries"`
	GenTimeMS       float64         `json:"gen_time_ms"`
	ExeTimeMS       float64         `json:"exe_time_ms"`
	WallMS          float64         `json:"wall_ms"`
	Stages          []benchStageRow `json:"stages,omitempty"`
}

// benchStageRow flattens one stage.Snapshot for the JSON report.
type benchStageRow struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	In      int64   `json:"in"`
	Out     int64   `json:"out"`
	BusyMS  float64 `json:"busy_ms"`
	WaitMS  float64 `json:"wait_ms"`
	StallMS float64 `json:"stall_ms"`
}

func benchCampaignRun(t *testing.T, monolithic bool, parallel int) benchCampaignRow {
	t.Helper()
	e := benchGenCampaign(false)
	e.Name = "bench-campaign-mline"
	e.Programs = 8
	e.Monolithic = monolithic
	e.Parallel = parallel
	w0 := time.Now()
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(w0)
	engine := "staged"
	if monolithic {
		engine = "monolithic"
	}
	row := benchCampaignRow{
		Engine:          engine,
		Parallel:        parallel,
		Programs:        res.Programs,
		Experiments:     res.Experiments,
		Counterexamples: res.Counterexamples,
		Inconclusive:    res.Inconclusive,
		Queries:         res.Queries,
		GenTimeMS:       float64(res.GenTime.Microseconds()) / 1e3,
		ExeTimeMS:       float64(res.ExeTime.Microseconds()) / 1e3,
		WallMS:          float64(wall.Microseconds()) / 1e3,
	}
	for _, s := range res.Stages {
		row.Stages = append(row.Stages, benchStageRow{
			Name:    s.Name,
			Workers: s.Workers,
			In:      s.In,
			Out:     s.Out,
			BusyMS:  float64(s.Busy.Microseconds()) / 1e3,
			WaitMS:  float64(s.Wait.Microseconds()) / 1e3,
			StallMS: float64(s.Stall.Microseconds()) / 1e3,
		})
	}
	return row
}

// TestWriteBenchCampaign measures campaign wall clock of the staged engine
// against the monolithic worker pool at Parallel=4 on the MLine campaign
// (8 programs) and writes BENCH_campaign.json. Gated behind BENCH_CAMPAIGN=1
// so regular test runs stay fast:
//
//	BENCH_CAMPAIGN=1 go test -run TestWriteBenchCampaign -count=1 .
//
// (or `make bench-campaign`). Both engines must report identical campaign
// counts — the staged engine changes scheduling, not outcomes — and the
// staged engine must not regress generation cost (GenTime measures pure
// solver work, independent of stage overlap). The wall-clock speedup is
// reported, not asserted: on a single-core runner stage overlap cannot beat
// the monolithic pool, so a hard floor would make the benchmark flaky.
func TestWriteBenchCampaign(t *testing.T) {
	if os.Getenv("BENCH_CAMPAIGN") == "" {
		t.Skip("set BENCH_CAMPAIGN=1 to run the campaign-engine benchmark")
	}
	const parallel = 4
	mono := benchCampaignRun(t, true, parallel)
	staged := benchCampaignRun(t, false, parallel)
	if staged.Experiments != mono.Experiments ||
		staged.Counterexamples != mono.Counterexamples ||
		staged.Inconclusive != mono.Inconclusive ||
		staged.Queries != mono.Queries {
		t.Errorf("campaign counts diverge between engines:\nmonolithic %+v\nstaged     %+v", mono, staged)
	}
	// Generation cost must not regress: overlap moves work earlier in wall
	// time, it must not add solver work. 15% headroom absorbs timer noise.
	if mono.GenTimeMS > 0 && staged.GenTimeMS > mono.GenTimeMS*1.15 {
		t.Errorf("staged GenTime %.1fms regressed past monolithic %.1fms (+15%%)",
			staged.GenTimeMS, mono.GenTimeMS)
	}
	speedup := 0.0
	if staged.WallMS > 0 {
		speedup = mono.WallMS / staged.WallMS
	}
	out := struct {
		Date       string           `json:"date"`
		Campaign   string           `json:"campaign"`
		Cores      int              `json:"gomaxprocs"`
		Monolithic benchCampaignRow `json:"monolithic"`
		Staged     benchCampaignRow `json:"staged"`
		Speedup    float64          `json:"wall_clock_speedup"`
	}{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Campaign:   "MLine-support, TemplateA^3 (8 paths), refined MCt/SpecAll, 8 programs x 40 tests, seed 2021, parallel 4",
		Cores:      runtime.GOMAXPROCS(0),
		Monolithic: mono,
		Staged:     staged,
		Speedup:    speedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_campaign.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wall-clock speedup: %.2fx (monolithic %.1fms, staged %.1fms) on %d core(s)",
		speedup, mono.WallMS, staged.WallMS, out.Cores)
	if out.Cores >= 4 && speedup < 1.0 {
		// Only meaningful with real cores to overlap on; single-core CI
		// runners report the ratio without failing.
		t.Errorf("staged engine slower than monolithic at %d cores: %.2fx", out.Cores, speedup)
	}
}
