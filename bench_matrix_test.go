package scamv

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// benchMatrixRow is one platform's entry in BENCH_matrix.json, reported both
// for the batched matrix campaign and for the sequential baseline.
type benchMatrixRow struct {
	Platform        string  `json:"platform"`
	Verdict         string  `json:"verdict"`
	Experiments     int     `json:"experiments"`
	Counterexamples int     `json:"counterexamples"`
	Inconclusive    int     `json:"inconclusive"`
	ExeTimeMS       float64 `json:"exe_time_ms"`
}

// TestWriteBenchMatrix measures the batched matrix driver against the naive
// alternative — K full single-platform campaigns run back to back — and
// writes BENCH_matrix.json. Gated behind BENCH_MATRIX=1 so regular test runs
// stay fast:
//
//	BENCH_MATRIX=1 go test -run TestWriteBenchMatrix -count=1 .
//
// (or `make bench-matrix`). Generation is platform-independent, so the
// matrix pays it once where the sequential baseline pays it K times; with
// generation dominating execution the batched campaign must come in under
// 0.5x of the sequential wall clock, and every per-platform verdict count
// must be identical between the two (the batching changes cost, not
// outcomes).
func TestWriteBenchMatrix(t *testing.T) {
	if os.Getenv("BENCH_MATRIX") == "" {
		t.Skip("set BENCH_MATRIX=1 to run the matrix benchmark")
	}
	presets := []string{"a53", "a72", "m0"}

	// Sequential baseline: one full campaign per platform, same seed, so
	// each regenerates the identical suite and then executes it.
	seqStart := time.Now()
	seqRows := make([]benchMatrixRow, 0, len(presets))
	for _, name := range presets {
		e := benchGenCampaign(false)
		e.Name = "bench-matrix-seq-" + name
		specs, err := PlatformsFromPresets(name)
		if err != nil {
			t.Fatal(err)
		}
		e.Micro = specs[0].Micro
		res, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		verdict := "sound"
		if res.Found {
			verdict = "unsound"
		}
		seqRows = append(seqRows, benchMatrixRow{
			Platform:        name,
			Verdict:         verdict,
			Experiments:     res.Experiments,
			Counterexamples: res.Counterexamples,
			Inconclusive:    res.Inconclusive,
			ExeTimeMS:       float64(res.ExeTime.Microseconds()) / 1e3,
		})
	}
	seqWall := time.Since(seqStart)

	// Batched matrix: one campaign, one generation pass, K platform runs
	// per generated test.
	e := benchGenCampaign(false)
	e.Name = "bench-matrix"
	specs, err := PlatformsFromPresets(presets...)
	if err != nil {
		t.Fatal(err)
	}
	e.Platforms = specs
	matStart := time.Now()
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	matWall := time.Since(matStart)

	if len(res.Matrix) != len(seqRows) {
		t.Fatalf("matrix produced %d rows, want %d", len(res.Matrix), len(seqRows))
	}
	matRows := make([]benchMatrixRow, 0, len(res.Matrix))
	for i, row := range res.Matrix {
		mr := benchMatrixRow{
			Platform:        row.Platform,
			Verdict:         row.Verdict(),
			Experiments:     row.Experiments,
			Counterexamples: row.Counterexamples,
			Inconclusive:    row.Inconclusive,
			ExeTimeMS:       float64(row.ExeTime.Microseconds()) / 1e3,
		}
		matRows = append(matRows, mr)
		sr := seqRows[i]
		if mr.Platform != sr.Platform || mr.Experiments != sr.Experiments ||
			mr.Counterexamples != sr.Counterexamples || mr.Inconclusive != sr.Inconclusive ||
			mr.Verdict != sr.Verdict {
			t.Errorf("platform %s counts diverge:\nmatrix     %+v\nsequential %+v", sr.Platform, mr, sr)
		}
	}

	ratio := 0.0
	if seqWall > 0 {
		ratio = matWall.Seconds() / seqWall.Seconds()
	}
	out := struct {
		Date       string           `json:"date"`
		Campaign   string           `json:"campaign"`
		Platforms  []string         `json:"platforms"`
		SeqWallMS  float64          `json:"sequential_wall_ms"`
		MatWallMS  float64          `json:"matrix_wall_ms"`
		WallRatio  float64          `json:"matrix_over_sequential"`
		Matrix     []benchMatrixRow `json:"matrix"`
		Sequential []benchMatrixRow `json:"sequential"`
	}{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Campaign:   "MLine-support, TemplateA^3 (8 paths), 128 classes, refined MCt/SpecAll, 3 programs x 40 tests, seed 2021, K=3 platforms",
		Platforms:  presets,
		SeqWallMS:  float64(seqWall.Microseconds()) / 1e3,
		MatWallMS:  float64(matWall.Microseconds()) / 1e3,
		WallRatio:  ratio,
		Matrix:     matRows,
		Sequential: seqRows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_matrix.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("matrix %.1fms vs sequential %.1fms (%.2fx)",
		out.MatWallMS, out.SeqWallMS, ratio)
	if ratio >= 0.5 {
		t.Errorf("matrix wall clock %.2fx of sequential, want < 0.5x (generation should amortize)", ratio)
	}
}
