module scamv

go 1.22
