package scamv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"scamv/internal/telemetry"
)

// benchTelemetryRow is one tracer configuration's entry in
// BENCH_telemetry.json.
type benchTelemetryRow struct {
	Tracer          string  `json:"tracer"` // "nil" or "jsonl"
	Programs        int     `json:"programs"`
	Experiments     int     `json:"experiments"`
	Counterexamples int     `json:"counterexamples"`
	Queries         int     `json:"queries"`
	WallMS          float64 `json:"wall_ms"`
	TraceRecords    int     `json:"trace_records,omitempty"`
	TraceBytes      int64   `json:"trace_bytes,omitempty"`
}

// benchTelemetryRun runs the MLine campaign once; with trace=true the full
// telemetry spine is on (spans, query deltas, verdicts, JSONL encode and
// buffered file write), with trace=false the tracer is nil and every
// instrumentation site reduces to one pointer check.
func benchTelemetryRun(t *testing.T, trace bool, parallel int) benchTelemetryRow {
	t.Helper()
	e := benchGenCampaign(false)
	e.Name = "bench-telemetry-mline"
	e.Programs = 8
	e.Parallel = parallel

	row := benchTelemetryRow{Tracer: "nil"}
	var tr *telemetry.Tracer
	var path string
	if trace {
		row.Tracer = "jsonl"
		path = filepath.Join(t.TempDir(), "trace.jsonl")
		var err error
		tr, err = telemetry.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		e.Trace = tr
	}

	w0 := time.Now()
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	row.WallMS = float64(time.Since(w0).Microseconds()) / 1e3
	row.Programs = res.Programs
	row.Experiments = res.Experiments
	row.Counterexamples = res.Counterexamples
	row.Queries = res.Queries

	if trace {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		row.TraceBytes = fi.Size()
		recs, err := telemetry.LoadTrace(path)
		if err != nil {
			t.Fatal(err)
		}
		row.TraceRecords = len(recs)
	}
	return row
}

// TestWriteBenchTelemetry measures the overhead of the telemetry spine:
// the MLine campaign with a full JSONL tracer attached versus a nil tracer,
// written to BENCH_telemetry.json. Gated behind BENCH_TELEMETRY=1:
//
//	BENCH_TELEMETRY=1 go test -run TestWriteBenchTelemetry -count=1 .
//
// (or `make bench-telemetry`). Each configuration runs twice interleaved
// and keeps the faster wall time, squeezing out warmup and scheduler noise.
// The acceptance target is tracer-on within 5% of tracer-nil; the hard
// failure threshold is 25% so a noisy shared runner doesn't flake the CI
// smoke run — the measured ratio is always written to the report.
func TestWriteBenchTelemetry(t *testing.T) {
	if os.Getenv("BENCH_TELEMETRY") == "" {
		t.Skip("set BENCH_TELEMETRY=1 to run the telemetry-overhead benchmark")
	}
	const parallel = 4
	var off, on benchTelemetryRow
	for i := 0; i < 2; i++ {
		o := benchTelemetryRun(t, false, parallel)
		n := benchTelemetryRun(t, true, parallel)
		if i == 0 || o.WallMS < off.WallMS {
			off = o
		}
		if i == 0 || n.WallMS < on.WallMS {
			on = n
		}
	}

	// Tracing must observe, not perturb: identical campaign counts.
	if on.Experiments != off.Experiments || on.Counterexamples != off.Counterexamples ||
		on.Queries != off.Queries {
		t.Errorf("tracer changed campaign counts:\nnil   %+v\njsonl %+v", off, on)
	}
	if on.TraceRecords == 0 || on.TraceBytes == 0 {
		t.Errorf("tracer-on run produced no trace: %+v", on)
	}

	overhead := 0.0
	if off.WallMS > 0 {
		overhead = on.WallMS / off.WallMS
	}
	out := struct {
		Date     string            `json:"date"`
		Campaign string            `json:"campaign"`
		Cores    int               `json:"gomaxprocs"`
		Nil      benchTelemetryRow `json:"tracer_nil"`
		JSONL    benchTelemetryRow `json:"tracer_jsonl"`
		Overhead float64           `json:"wall_clock_overhead"`
		Target   float64           `json:"target"`
	}{
		Date:     time.Now().UTC().Format("2006-01-02"),
		Campaign: "MLine-support, TemplateA^3 (8 paths), refined MCt/SpecAll, 8 programs x 40 tests, seed 2021, parallel 4",
		Cores:    runtime.GOMAXPROCS(0),
		Nil:      off,
		JSONL:    on,
		Overhead: overhead,
		Target:   1.05,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("telemetry overhead: %.3fx (nil %.1fms, jsonl %.1fms, %d records / %d bytes) on %d core(s)",
		overhead, off.WallMS, on.WallMS, on.TraceRecords, on.TraceBytes, out.Cores)
	if overhead > 1.25 {
		t.Errorf("telemetry overhead %.2fx exceeds the 1.25x flake ceiling (target 1.05x)", overhead)
	}
}
